//! The zero-allocation routing fast path.
//!
//! [`crate::brsmn`]'s reference router allocates on every frame: fresh
//! `Vec<Line<P>>` buffers per level, `Vec<Vec<usize>>` sweep state per plan,
//! and a settings table per RBN. This module routes the **semantic** model
//! with none of that:
//!
//! * a message is a `FastLine` — just its current four-value tag and its
//!   source input. Destination sets never travel: the set of a message at a
//!   block `[lo, lo + size)` is implicitly `dests(src) ∩ [lo, lo + size)`,
//!   answered by binary search on the assignment, and a broadcast "split"
//!   is a plain `Copy` of the source id;
//! * all sweep planning runs through [`brsmn_rbn::bitplan::SweepScratch`]
//!   (packed words + popcount) writing into one persistent
//!   [`RbnSettings`] table;
//! * the per-level shuffle/exchange wiring comes precomputed from the
//!   [`Brsmn`](crate::brsmn::Brsmn)'s [`RbnWiring`].
//!
//! Everything lives in a [`RouteScratch`] arena sized once from `n`; after
//! the first frame at a given size, routing performs **zero** heap
//! allocations (pinned by the `alloc-count` test in `brsmn-bench`). The
//! result is bit-identical to the reference router — same routing result,
//! same trace, same final settings — which the equivalence property tests
//! in `brsmn-core/tests/fastpath_equivalence.rs` verify.

use std::cell::RefCell;
use std::time::Instant;

use crate::assignment::{MulticastAssignment, RoutingResult};
use crate::brsmn::RouteTrace;
use crate::bsn::BsnTrace;
use crate::engine::StageTimer;
use crate::error::CoreError;
use crate::plancache::{CapturedPlan, PHASE_QUASISORT, PHASE_SCATTER};
use brsmn_rbn::bitplan::SweepScratch;
use brsmn_rbn::{RbnSettings, RbnWiring};
use brsmn_switch::tag::TagCounts;
use brsmn_switch::{SwitchError, SwitchSetting, Tag};
use brsmn_topology::{check_size, log2_exact};

/// Sentinel source id of an empty line.
pub(crate) const NO_SRC: u32 = u32::MAX;

/// Sentinel for [`FastLine::d_val`]: lone destination not yet cached.
pub(crate) const NO_VAL: u32 = u32::MAX;

/// One line of the fast path: the current tag, the source input of the
/// message on it (`NO_SRC` when idle), and the message's *destination range*
/// — `dests(src)[d_lo..d_hi)` is exactly the destination subset the message
/// still has to reach inside its current block, with `d_mid` splitting it at
/// the block midpoint. `Copy`, so a broadcast split is two struct writes
/// (both copies inherit the triple; each resolves to its half after the
/// block).
///
/// The range triple is the level-transition fusion: level `L+1` derives a
/// line's entry tag from the range level `L` left behind (one midpoint
/// search over an already-narrowed slice — or a single compare once the
/// range is down to one destination) instead of re-searching the full
/// destination set three times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FastLine {
    pub(crate) tag: Tag,
    pub(crate) src: u32,
    pub(crate) d_lo: u32,
    pub(crate) d_mid: u32,
    pub(crate) d_hi: u32,
    /// The lone destination once the range is unicast, cached on the first
    /// entry-tag evaluation ([`NO_VAL`] until then). A range never grows, so
    /// the cache needs no invalidation; every later level's entry tag is
    /// then a single compare with no assignment pointer chase. Broadcast
    /// splits copy the whole struct, and an α range is never unicast, so
    /// copies always inherit `NO_VAL`.
    pub(crate) d_val: u32,
}

impl FastLine {
    pub(crate) const EMPTY: FastLine = FastLine {
        tag: Tag::Eps,
        src: NO_SRC,
        d_lo: 0,
        d_mid: 0,
        d_hi: 0,
        d_val: NO_VAL,
    };
}

/// Reusable routing arena: the line buffer, the packed sweep scratch, and the
/// persistent settings table, all sized from `n` on first use and never
/// reallocated while the size stays fixed.
///
/// Pass one to [`Brsmn::route_into`](crate::brsmn::Brsmn::route_into) /
/// [`Brsmn::route_buffered`](crate::brsmn::Brsmn::route_buffered), or let
/// [`with_thread_scratch`] manage a thread-local instance (what
/// [`Brsmn::route`](crate::brsmn::Brsmn::route) and the engine's workers do).
#[derive(Debug, Clone)]
pub struct RouteScratch {
    n: usize,
    lines: Vec<FastLine>,
    sweep: SweepScratch,
    settings: RbnSettings,
}

impl Default for RouteScratch {
    fn default() -> Self {
        RouteScratch::empty()
    }
}

impl RouteScratch {
    /// An arena pre-sized for an `n × n` network.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        check_size(n)?;
        let mut s = RouteScratch::empty();
        s.ensure(n);
        Ok(s)
    }

    /// An unsized arena; buffers grow on first use.
    pub fn empty() -> Self {
        RouteScratch {
            n: 0,
            lines: Vec::new(),
            sweep: SweepScratch::new(),
            // Placeholder with zero stages; replaced by `ensure`.
            settings: RbnSettings::identity(1),
        }
    }

    /// The network size this arena is currently sized for (`0` if unused).
    pub fn n(&self) -> usize {
        self.n
    }

    /// (Re)sizes the arena for an `n × n` network. A no-op at the current
    /// size — the warm-up allocation happens exactly once per size.
    pub fn ensure(&mut self, n: usize) {
        if self.n != n {
            self.n = n;
            self.lines.clear();
            self.lines.resize(n, FastLine::EMPTY);
            self.settings = RbnSettings::identity(n);
        }
    }

    /// Sources delivered to each output by the last successful
    /// [`Brsmn::route_into`](crate::brsmn::Brsmn::route_into) call.
    pub fn output_sources(&self) -> impl Iterator<Item = Option<usize>> + '_ {
        self.lines.iter().map(|l| {
            if l.src == NO_SRC {
                None
            } else {
                Some(l.src as usize)
            }
        })
    }

    /// Approximate heap bytes currently reserved by the arena.
    pub fn footprint_bytes(&self) -> usize {
        let settings_bytes: usize = (0..self.settings.num_stages())
            .map(|j| self.settings.stage(j).len() * std::mem::size_of::<SwitchSetting>())
            .sum();
        self.lines.capacity() * std::mem::size_of::<FastLine>()
            + self.sweep.footprint_bytes()
            + settings_bytes
    }

    /// Collects the delivered sources into a fresh [`RoutingResult`] (the
    /// one allocation of [`Brsmn::route_buffered`](crate::brsmn::Brsmn::route_buffered)).
    fn to_result(&self) -> RoutingResult {
        RoutingResult::new(self.output_sources().collect())
    }

    /// The planner halves of the arena (packed sweep scratch + settings
    /// table), borrowed together for the generic line-level router.
    pub(crate) fn planner_parts(&mut self) -> (&mut SweepScratch, &mut RbnSettings) {
        (&mut self.sweep, &mut self.settings)
    }

    /// The live switch-settings table, as left by the last routing call.
    /// After a traced plan replay this is bit-identical to the table a fresh
    /// plan of the same assignment would leave (the plan-cache property
    /// tests pin this).
    pub fn settings_table(&self) -> &RbnSettings {
        &self.settings
    }
}

thread_local! {
    static TLS_SCRATCH: RefCell<RouteScratch> = RefCell::new(RouteScratch::empty());
}

/// Runs `f` with this thread's [`RouteScratch`], sized for `n`. The arena
/// persists for the life of the thread, so repeated calls at a fixed size
/// reuse all buffers — this is how each engine worker owns its scratch.
pub fn with_thread_scratch<R>(n: usize, f: impl FnOnce(&mut RouteScratch) -> R) -> R {
    TLS_SCRATCH.with(|s| {
        let mut s = s.borrow_mut();
        s.ensure(n);
        f(&mut s)
    })
}

/// Entry tag of the message `dests` (sorted, absolute) at the block
/// `[lo, lo + size)`: which halves of the block it still has to reach.
/// Three binary searches over the full set — kept as the oracle for
/// [`entry_tag_ranged`], which answers the same question from the line's
/// retained range with at most one search.
#[inline]
pub(crate) fn entry_tag_fast(dests: &[usize], lo: usize, size: usize) -> Tag {
    let mid = lo + size / 2;
    let i_lo = dests.partition_point(|&d| d < lo);
    let i_mid = dests.partition_point(|&d| d < mid);
    let i_hi = dests.partition_point(|&d| d < lo + size);
    match (i_mid > i_lo, i_hi > i_mid) {
        (true, false) => Tag::Zero,
        (false, true) => Tag::One,
        (true, true) => Tag::Alpha,
        (false, false) => unreachable!("dests are non-empty within the block"),
    }
}

/// Entry tag from a line's retained destination range: `dests[d_lo..d_hi)`
/// is the (non-empty) destination subset inside the current block, and `mid`
/// is the block's absolute midpoint. Returns the split point `d_mid` and the
/// tag. A unicast range (one destination — the common case deep in the
/// network) needs a single compare; a multicast range needs one
/// `partition_point` over the narrowed slice instead of three over the full
/// set.
#[inline]
pub(crate) fn entry_tag_ranged(dests: &[usize], mid: usize, d_lo: usize, d_hi: usize) -> (usize, Tag) {
    debug_assert!(d_lo < d_hi, "live line with an empty destination range");
    let d_mid = if d_hi - d_lo == 1 {
        if dests[d_lo] < mid {
            d_hi
        } else {
            d_lo
        }
    } else {
        d_lo + dests[d_lo..d_hi].partition_point(|&d| d < mid)
    };
    let tag = match (d_mid > d_lo, d_hi > d_mid) {
        (true, false) => Tag::Zero,
        (false, true) => Tag::One,
        (true, true) => Tag::Alpha,
        (false, false) => unreachable!("dests are non-empty within the block"),
    };
    (d_mid, tag)
}

/// Entry tag of a live line at the block with absolute midpoint `mid`,
/// updating the line's split point (and tag) in place. The unicast case —
/// the common one deep in the network — reads the cached [`FastLine::d_val`]
/// and never touches the assignment after the first evaluation; the
/// multicast case defers to [`entry_tag_ranged`].
#[inline]
pub(crate) fn entry_tag_line(asg: &MulticastAssignment, line: &mut FastLine, mid: usize) -> Tag {
    let tag = if line.d_hi - line.d_lo == 1 {
        let v = if line.d_val != NO_VAL {
            line.d_val as usize
        } else {
            let v = asg.dests(line.src as usize)[line.d_lo as usize];
            line.d_val = v as u32;
            v
        };
        if v < mid {
            line.d_mid = line.d_hi;
            Tag::Zero
        } else {
            line.d_mid = line.d_lo;
            Tag::One
        }
    } else {
        let dests = asg.dests(line.src as usize);
        let (d_mid, tag) =
            entry_tag_ranged(dests, mid, line.d_lo as usize, line.d_hi as usize);
        line.d_mid = d_mid as u32;
        tag
    };
    line.tag = tag;
    tag
}

/// Executes stages `[0, log2 size)` of the settings table on the fast lines
/// of `[base, base + size)`, walking the precomputed wiring. Splitting an α
/// copies the source id; the broadcast legality checks match
/// [`RbnSettings::run_block`] exactly.
pub(crate) fn run_block_fast(
    lines: &mut [FastLine],
    base: usize,
    size: usize,
    settings: &RbnSettings,
    wiring: &RbnWiring,
) -> Result<(), SwitchError> {
    let k = log2_exact(size) as usize;
    for j in 0..k {
        let stage = settings.stage(j);
        let pairs = wiring.stage(j);
        for idx in base / 2..(base + size) / 2 {
            let (u, l) = pairs[idx];
            let (u, l) = (u as usize, l as usize);
            match stage[idx] {
                SwitchSetting::Parallel => {}
                SwitchSetting::Crossing => lines.swap(u, l),
                setting @ SwitchSetting::UpperBroadcast => {
                    if lines[u].tag != Tag::Alpha || lines[l].tag != Tag::Eps {
                        return Err(SwitchError {
                            setting,
                            found: (lines[u].tag, lines[l].tag),
                        });
                    }
                    // Both copies inherit the α's destination range; each
                    // narrows to its own half after the block.
                    let a = lines[u];
                    lines[u] = FastLine { tag: Tag::Zero, ..a };
                    lines[l] = FastLine { tag: Tag::One, ..a };
                }
                setting @ SwitchSetting::LowerBroadcast => {
                    if lines[u].tag != Tag::Eps || lines[l].tag != Tag::Alpha {
                        return Err(SwitchError {
                            setting,
                            found: (lines[u].tag, lines[l].tag),
                        });
                    }
                    let a = lines[l];
                    lines[u] = FastLine { tag: Tag::Zero, ..a };
                    lines[l] = FastLine { tag: Tag::One, ..a };
                }
            }
        }
    }
    Ok(())
}

/// Computes entry tags (and midpoint splits) for the live lines of
/// `[base, base + size)` from their retained destination ranges.
fn enter_block(asg: &MulticastAssignment, lines: &mut [FastLine], base: usize, size: usize) {
    let mid = base + size / 2;
    for line in lines[base..base + size].iter_mut() {
        if line.src == NO_SRC {
            line.tag = Tag::Eps;
        } else {
            let tag = entry_tag_line(asg, line, mid);
            debug_assert_eq!(tag, entry_tag_fast(asg.dests(line.src as usize), base, size));
        }
    }
}

/// Eq. (4) postcondition check plus the level-transition handoff: each live
/// line narrows its destination range to the half it landed in, so the next
/// level's entry tags derive from the retained range.
pub(crate) fn leave_block(lines: &mut [FastLine], base: usize, size: usize) -> Result<(), CoreError> {
    let half = size / 2;
    for (pos, line) in lines[base..base + size].iter_mut().enumerate() {
        let t = line.tag;
        let ok = if pos < half {
            t != Tag::One && t != Tag::Alpha
        } else {
            t != Tag::Zero && t != Tag::Alpha
        };
        if !ok {
            return Err(CoreError::Internal(format!(
                "BSN postcondition violated: tag {t} at output {pos} of {size}"
            )));
        }
        if line.src != NO_SRC {
            if pos < half {
                line.d_hi = line.d_mid;
            } else {
                line.d_lo = line.d_mid;
            }
        }
    }
    Ok(())
}

/// Routes one BSN block `[base, base + size)` in place: entry tags, capacity
/// check, packed scatter plan + run, fused quasisort plan + run,
/// postcondition check. Mirrors [`crate::bsn::Bsn::route`] step for step
/// (including its error values) without allocating. When `capture` is given,
/// the freshly planned scatter and quasisort stages of this block are
/// snapshotted into the plan right after each planning call (the settings
/// table is a shared scratch, overwritten per phase per block — capture must
/// ride the planning loop, it cannot run after the frame).
#[allow(clippy::too_many_arguments)]
fn route_bsn_fast(
    asg: &MulticastAssignment,
    lines: &mut [FastLine],
    sweep: &mut SweepScratch,
    settings: &mut RbnSettings,
    wiring: &RbnWiring,
    base: usize,
    size: usize,
    level: usize,
    trace: Option<&mut RouteTrace>,
    mut capture: Option<&mut CapturedPlan>,
) -> Result<(), CoreError> {
    // Entry tags fused with the scatter sweep's tag packing: one pass both
    // derives each line's tag from its retained range and packs it into the
    // planner's bit planes.
    let mid = base + size / 2;
    sweep.set_tags(size, |i| {
        let line = &mut lines[base + i];
        if line.src == NO_SRC {
            line.tag = Tag::Eps;
        } else {
            let tag = entry_tag_line(asg, line, mid);
            debug_assert_eq!(tag, entry_tag_fast(asg.dests(line.src as usize), base, size));
        }
        line.tag
    });

    // Eq. (2): a realizable load never requests more than n/2 outputs per
    // half.
    let counts: TagCounts = sweep.counts();
    if !counts.satisfies_bsn_input_constraints() {
        return Err(CoreError::HalfCapacityExceeded {
            n: size,
            n0: counts.n0,
            n1: counts.n1,
            na: counts.na,
        });
    }

    let input_tags: Vec<Tag> = if trace.is_some() {
        lines[base..base + size].iter().map(|l| l.tag).collect()
    } else {
        Vec::new()
    };

    // Scatter network: eliminate αs (Theorem 2; nα ≤ nε by Eq. 3).
    sweep.plan_scatter(0, base, settings);
    if let Some(plan) = capture.as_deref_mut() {
        plan.store_phase(level, PHASE_SCATTER, base, size, settings);
    }
    run_block_fast(lines, base, size, settings, wiring)?;
    let after_scatter: Vec<Tag> = if trace.is_some() {
        lines[base..base + size].iter().map(|l| l.tag).collect()
    } else {
        Vec::new()
    };

    // Quasisorting network: ε-divide + bit-sort, both backward waves fused
    // into one pass (unicast only). The tags are already materialized on
    // the lines, so the branchless code packing applies.
    sweep.set_tags_from_codes(size, |i| lines[base + i].tag as u8);
    sweep.plan_quasisort_fused(base, settings)?;
    if let Some(plan) = capture.as_deref_mut() {
        plan.store_phase(level, PHASE_QUASISORT, base, size, settings);
    }
    run_block_fast(lines, base, size, settings, wiring)?;

    leave_block(lines, base, size)?;

    if let Some(t) = trace {
        t.levels[level - 1].blocks.push(BsnTrace {
            input_tags,
            after_scatter,
            output_tags: lines[base..base + size].iter().map(|l| l.tag).collect(),
        });
    }
    Ok(())
}

/// The final 2×2 switch over outputs `{lo, lo+1}`, in place. The setting
/// table and error values match [`crate::brsmn`]'s `final_switch` exactly.
/// Returns the chosen setting so the capture path can record it.
pub(crate) fn final_switch_fast(
    asg: &MulticastAssignment,
    lines: &mut [FastLine],
    lo: usize,
    trace: &mut Option<&mut RouteTrace>,
) -> Result<SwitchSetting, CoreError> {
    use SwitchSetting::*;
    enter_block(asg, lines, lo, 2);
    let (tu, tl) = (lines[lo].tag, lines[lo + 1].tag);
    let setting = match (tu, tl) {
        (Tag::Alpha, Tag::Eps) => UpperBroadcast,
        (Tag::Eps, Tag::Alpha) => LowerBroadcast,
        (Tag::Alpha, _) | (_, Tag::Alpha) => {
            return Err(CoreError::OutputConflict { output: lo });
        }
        (Tag::Zero, Tag::Zero) => return Err(CoreError::OutputConflict { output: lo }),
        (Tag::One, Tag::One) => return Err(CoreError::OutputConflict { output: lo + 1 }),
        (Tag::Zero, _) | (Tag::Eps, Tag::One) | (Tag::Eps, Tag::Eps) => Parallel,
        (Tag::One, _) | (Tag::Eps, Tag::Zero) => Crossing,
    };
    if let Some(t) = trace {
        t.final_tags[lo] = tu;
        t.final_tags[lo + 1] = tl;
        t.final_settings[lo / 2] = setting;
    }
    apply_final_setting(lines, lo, setting);
    Ok(setting)
}

/// Applies a final-stage setting to the pair `{lo, lo+1}` — shared by the
/// fresh path (setting just derived from tags) and plan replay (setting read
/// from the captured arena).
pub(crate) fn apply_final_setting(lines: &mut [FastLine], lo: usize, setting: SwitchSetting) {
    use SwitchSetting::*;
    match setting {
        Parallel => {}
        Crossing => lines.swap(lo, lo + 1),
        UpperBroadcast | LowerBroadcast => {
            let a = if setting == UpperBroadcast {
                lines[lo]
            } else {
                lines[lo + 1]
            };
            lines[lo] = FastLine { tag: Tag::Zero, ..a };
            lines[lo + 1] = FastLine { tag: Tag::One, ..a };
        }
    }
}

/// Loads a frame's input lines into the arena: idle inputs get
/// [`FastLine::EMPTY`], live inputs start with their whole destination set
/// as the retained range.
pub(crate) fn init_lines(asg: &MulticastAssignment, lines: &mut [FastLine]) {
    for (i, line) in lines.iter_mut().enumerate() {
        let d = asg.dests(i);
        *line = if d.is_empty() {
            FastLine::EMPTY
        } else {
            FastLine {
                tag: Tag::Eps,
                src: i as u32,
                d_lo: 0,
                d_mid: d.len() as u32,
                d_hi: d.len() as u32,
                d_val: if d.len() == 1 { d[0] as u32 } else { NO_VAL },
            }
        };
    }
}

/// Final delivery verification, shared by fresh routing and replay: every
/// delivered message must belong at its output *per the actual assignment*
/// (the reference does this in `extract_result`). On the replay path this
/// is the last line of defense against a corrupted or foreign plan.
pub(crate) fn verify_delivery(asg: &MulticastAssignment, lines: &[FastLine]) -> Result<(), CoreError> {
    for (o, line) in lines.iter().enumerate() {
        if line.src != NO_SRC && asg.dests(line.src as usize).binary_search(&o).is_err() {
            return Err(CoreError::Internal(format!(
                "message from input {} misdelivered to output {o}",
                line.src
            )));
        }
    }
    Ok(())
}

/// Routes `asg` end to end on the fast path, leaving the delivered lines in
/// `scratch` (read them via [`RouteScratch::output_sources`]). Optionally
/// fills a [`RouteTrace`] and/or a [`StageTimer`] (the timer records exactly
/// what the reference engine's instrumented recursion records), and/or
/// snapshots every planned setting into a [`CapturedPlan`] for later replay.
pub(crate) fn route_assignment_fast(
    n: usize,
    wiring: &RbnWiring,
    asg: &MulticastAssignment,
    scratch: &mut RouteScratch,
    mut trace: Option<&mut RouteTrace>,
    mut timer: Option<&mut StageTimer>,
    mut capture: Option<&mut CapturedPlan>,
) -> Result<(), CoreError> {
    assert_eq!(asg.n(), n, "assignment size mismatch");
    scratch.ensure(n);
    let RouteScratch {
        lines,
        sweep,
        settings,
        ..
    } = scratch;

    init_lines(asg, lines);

    // Levels 1 … m−1: BSNs of halving size, blocks left to right (the same
    // order the reference's depth-first recursion pushes trace blocks).
    let mut size = n;
    let mut level = 1;
    while size > 2 {
        for b in 0..n / size {
            let t0 = timer.as_ref().map(|_| Instant::now());
            route_bsn_fast(
                asg,
                lines,
                sweep,
                settings,
                wiring,
                b * size,
                size,
                level,
                trace.as_deref_mut(),
                capture.as_deref_mut(),
            )?;
            if let (Some(tm), Some(t0)) = (timer.as_deref_mut(), t0) {
                tm.record_bsn(level, size, t0.elapsed());
            }
        }
        size /= 2;
        level += 1;
    }

    // Final level: n/2 plain 2×2 switches.
    for lo in (0..n).step_by(2) {
        let t0 = timer.as_ref().map(|_| Instant::now());
        let setting = final_switch_fast(asg, lines, lo, &mut trace)?;
        if let Some(plan) = capture.as_deref_mut() {
            plan.set_final(lo / 2, setting);
        }
        if let (Some(tm), Some(t0)) = (timer.as_deref_mut(), t0) {
            tm.record_final(t0.elapsed());
        }
    }

    // Drain the sweep's per-op profile unconditionally (so it never leaks
    // into a later, unrelated route) and fold it into the frame's timer.
    let profile = sweep.take_profile();
    if let Some(tm) = timer.as_deref_mut() {
        tm.plan_profile.merge(&profile);
    }

    verify_delivery(asg, lines)
}

/// Routes and collects the result (one `Vec` allocation for the result).
pub(crate) fn route_assignment_fast_buffered(
    n: usize,
    wiring: &RbnWiring,
    asg: &MulticastAssignment,
    scratch: &mut RouteScratch,
    trace: Option<&mut RouteTrace>,
    timer: Option<&mut StageTimer>,
    capture: Option<&mut CapturedPlan>,
) -> Result<RoutingResult, CoreError> {
    route_assignment_fast(n, wiring, asg, scratch, trace, timer, capture)?;
    Ok(scratch.to_result())
}

/// Replays one BSN block from the captured plan with full tracing: entry
/// tags are derived exactly like the fresh path (the trace must be
/// bit-identical), but both phases' settings are *loaded* from the plan into
/// the live table instead of planned, and executed through the same
/// [`run_block_fast`] (whose broadcast legality checks double as replay
/// integrity checks).
#[allow(clippy::too_many_arguments)]
fn replay_bsn_traced(
    asg: &MulticastAssignment,
    lines: &mut [FastLine],
    settings: &mut RbnSettings,
    wiring: &RbnWiring,
    plan: &CapturedPlan,
    base: usize,
    size: usize,
    level: usize,
    trace: &mut RouteTrace,
) -> Result<(), CoreError> {
    enter_block(asg, lines, base, size);
    let input_tags: Vec<Tag> = lines[base..base + size].iter().map(|l| l.tag).collect();

    plan.load_phase(level, PHASE_SCATTER, base, size, settings);
    run_block_fast(lines, base, size, settings, wiring)?;
    let after_scatter: Vec<Tag> = lines[base..base + size].iter().map(|l| l.tag).collect();

    plan.load_phase(level, PHASE_QUASISORT, base, size, settings);
    run_block_fast(lines, base, size, settings, wiring)?;

    leave_block(lines, base, size)?;
    trace.levels[level - 1].blocks.push(BsnTrace {
        input_tags,
        after_scatter,
        output_tags: lines[base..base + size].iter().map(|l| l.tag).collect(),
    });
    Ok(())
}

/// Replays one BSN block lean: no tags, no planes, no checks beyond the
/// frame-final delivery verification — just the captured 2-bit codes decoded
/// straight from the packed arena and applied to the source ids. This is the
/// warm-cache steady state: per block, `2·k` stage passes of shifts and
/// swaps, zero planning.
fn replay_bsn_lean(
    lines: &mut [FastLine],
    wiring: &RbnWiring,
    plan: &CapturedPlan,
    base: usize,
    size: usize,
    level: usize,
) {
    let k = log2_exact(size) as usize;
    for phase in [PHASE_SCATTER, PHASE_QUASISORT] {
        let phase_off = plan.phase_base(level, phase);
        for j in 0..k {
            let pairs = wiring.stage(j);
            for idx in base / 2..(base + size) / 2 {
                let (u, l) = pairs[idx];
                let (u, l) = (u as usize, l as usize);
                match plan.stage_code(phase_off, j, idx) {
                    0 => {}
                    1 => lines.swap(u, l),
                    2 => {
                        let a = lines[u];
                        lines[u] = FastLine { tag: Tag::Zero, ..a };
                        lines[l] = FastLine { tag: Tag::One, ..a };
                    }
                    _ => {
                        let a = lines[l];
                        lines[u] = FastLine { tag: Tag::Zero, ..a };
                        lines[l] = FastLine { tag: Tag::One, ..a };
                    }
                }
            }
        }
    }
}

/// Replays a captured plan for `asg` end to end, leaving the delivered lines
/// in `scratch`. Bit-identical to fresh routing of the same assignment:
/// same result, same trace (when requested), same final settings table (on
/// the traced path). The untraced path skips tag derivation entirely and
/// executes the packed codes directly — the warm-cache fast path.
///
/// The plan must have been captured for an equal assignment; the frame-final
/// delivery verification rejects replays against a different one.
pub(crate) fn route_assignment_replay(
    n: usize,
    wiring: &RbnWiring,
    asg: &MulticastAssignment,
    plan: &CapturedPlan,
    scratch: &mut RouteScratch,
    mut trace: Option<&mut RouteTrace>,
    mut timer: Option<&mut StageTimer>,
) -> Result<(), CoreError> {
    assert_eq!(asg.n(), n, "assignment size mismatch");
    if plan.n() != n {
        return Err(CoreError::Config(format!(
            "captured plan is for n = {}, network is n = {n}",
            plan.n()
        )));
    }
    scratch.ensure(n);
    let RouteScratch {
        lines, settings, ..
    } = scratch;

    init_lines(asg, lines);

    let mut size = n;
    let mut level = 1;
    while size > 2 {
        for b in 0..n / size {
            let t0 = timer.as_ref().map(|_| Instant::now());
            if let Some(t) = trace.as_deref_mut() {
                replay_bsn_traced(
                    asg, lines, settings, wiring, plan, b * size, size, level, t,
                )?;
            } else {
                replay_bsn_lean(lines, wiring, plan, b * size, size, level);
            }
            if let (Some(tm), Some(t0)) = (timer.as_deref_mut(), t0) {
                tm.record_bsn_replay(level, size, t0.elapsed());
            }
        }
        size /= 2;
        level += 1;
    }

    for lo in (0..n).step_by(2) {
        let t0 = timer.as_ref().map(|_| Instant::now());
        let setting = plan.final_setting(lo / 2);
        if let Some(t) = trace.as_deref_mut() {
            // The trace records entry tags; derive them exactly like the
            // fresh path (the captured setting matches what they imply).
            enter_block(asg, lines, lo, 2);
            t.final_tags[lo] = lines[lo].tag;
            t.final_tags[lo + 1] = lines[lo + 1].tag;
            t.final_settings[lo / 2] = setting;
        }
        apply_final_setting(lines, lo, setting);
        if let (Some(tm), Some(t0)) = (timer.as_deref_mut(), t0) {
            tm.record_final(t0.elapsed());
        }
    }

    verify_delivery(asg, lines)
}

/// Loads a frame's input lines into the arena *through a permutation*:
/// live input `i`'s message enters at plan-space position `input_map[i]`.
/// The permuted counterpart of [`init_lines`].
fn init_lines_permuted(asg: &MulticastAssignment, lines: &mut [FastLine], input_map: &[usize]) {
    lines.fill(FastLine::EMPTY);
    for (i, d) in asg.iter() {
        if d.is_empty() {
            continue;
        }
        lines[input_map[i]] = FastLine {
            tag: Tag::Eps,
            src: i as u32,
            d_lo: 0,
            d_mid: d.len() as u32,
            d_hi: d.len() as u32,
            d_val: if d.len() == 1 { d[0] as u32 } else { NO_VAL },
        };
    }
}

/// Delivery verification through the output permutation: the message the
/// plan delivered to plan-space position `output_map[d]` must belong at
/// *live* output `d` per the live assignment. Exactly as strong as
/// [`verify_delivery`] — `output_map` is a bijection, so every delivered
/// line is checked — and the last line of defense against a foreign plan
/// or an inconsistent permutation pair.
fn verify_delivery_permuted(
    asg: &MulticastAssignment,
    lines: &[FastLine],
    output_map: &[usize],
) -> Result<(), CoreError> {
    for (o, &q) in output_map.iter().enumerate() {
        let line = &lines[q];
        if line.src != NO_SRC && asg.dests(line.src as usize).binary_search(&o).is_err() {
            return Err(CoreError::Internal(format!(
                "message from input {} misdelivered to output {o} (plan line {q})",
                line.src
            )));
        }
    }
    Ok(())
}

/// Replays a plan captured for a *relabeling* of `asg` — the canonical
/// cache tier's executor. `input_map[i]` / `output_map[d]` give the
/// plan-space position of live input `i` / live output `d` (both full
/// bijections on `0..n`, e.g. composed from two [`crate::canonicalize`]
/// runs by the cache).
///
/// The live sources enter at their plan-space positions, the captured
/// setting planes execute verbatim (same lean decode loops as an exact
/// replay — no planning, no tag derivation), and each live output reads
/// its delivered source back through `output_map`. The returned result is
/// **bit-identical to fresh planning of the live assignment**: a routing
/// result is a pure function of its assignment (every claimed output
/// receives exactly its unique owner), and the frame-final permuted
/// delivery verification rejects any plan/permutation pair that violates
/// it. The trace/settings side channels are deliberately absent here —
/// they describe the *representative's* planes (shared by the whole
/// equivalence class), so traced requests take the fresh path instead.
pub(crate) fn route_assignment_replay_permuted(
    n: usize,
    wiring: &RbnWiring,
    asg: &MulticastAssignment,
    plan: &CapturedPlan,
    input_map: &[usize],
    output_map: &[usize],
    scratch: &mut RouteScratch,
    mut timer: Option<&mut StageTimer>,
) -> Result<RoutingResult, CoreError> {
    assert_eq!(asg.n(), n, "assignment size mismatch");
    if plan.n() != n {
        return Err(CoreError::Config(format!(
            "captured plan is for n = {}, network is n = {n}",
            plan.n()
        )));
    }
    if input_map.len() != n || output_map.len() != n {
        return Err(CoreError::Config(format!(
            "permutation length mismatch: maps are {}/{}, network is n = {n}",
            input_map.len(),
            output_map.len()
        )));
    }
    scratch.ensure(n);
    let RouteScratch { lines, .. } = scratch;

    init_lines_permuted(asg, lines, input_map);

    let mut size = n;
    let mut level = 1;
    while size > 2 {
        for b in 0..n / size {
            let t0 = timer.as_ref().map(|_| Instant::now());
            replay_bsn_lean(lines, wiring, plan, b * size, size, level);
            if let (Some(tm), Some(t0)) = (timer.as_deref_mut(), t0) {
                tm.record_bsn_replay(level, size, t0.elapsed());
            }
        }
        size /= 2;
        level += 1;
    }

    for lo in (0..n).step_by(2) {
        let t0 = timer.as_ref().map(|_| Instant::now());
        apply_final_setting(lines, lo, plan.final_setting(lo / 2));
        if let (Some(tm), Some(t0)) = (timer.as_deref_mut(), t0) {
            tm.record_final(t0.elapsed());
        }
    }

    verify_delivery_permuted(asg, lines, output_map)?;
    Ok(RoutingResult::new(
        output_map
            .iter()
            .map(|&q| match lines[q].src {
                NO_SRC => None,
                s => Some(s as usize),
            })
            .collect(),
    ))
}

/// Replays and collects the result (one `Vec` allocation for the result).
pub(crate) fn route_assignment_replay_buffered(
    n: usize,
    wiring: &RbnWiring,
    asg: &MulticastAssignment,
    plan: &CapturedPlan,
    scratch: &mut RouteScratch,
    trace: Option<&mut RouteTrace>,
    timer: Option<&mut StageTimer>,
) -> Result<RoutingResult, CoreError> {
    route_assignment_replay(n, wiring, asg, plan, scratch, trace, timer)?;
    Ok(scratch.to_result())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_tag_matches_semantic() {
        use crate::payload::SemanticMsg;
        use crate::RoutePayload;
        let dests = vec![2usize, 5];
        let msg = SemanticMsg::new(0, dests.clone());
        assert_eq!(entry_tag_fast(&dests, 0, 8), msg.entry_tag(0, 8));
        // After a split the semantic message holds only the in-block subset;
        // the fast path intersects on the fly.
        assert_eq!(entry_tag_fast(&dests, 0, 4), Tag::One);
        assert_eq!(entry_tag_fast(&dests, 4, 4), Tag::Zero);
        assert_eq!(entry_tag_fast(&dests, 2, 2), Tag::Zero);
        assert_eq!(entry_tag_fast(&dests, 4, 2), Tag::One);
    }

    #[test]
    fn scratch_resizes_once_per_size() {
        let mut s = RouteScratch::new(8).unwrap();
        assert_eq!(s.n(), 8);
        let fp = s.footprint_bytes();
        s.ensure(8);
        assert_eq!(s.footprint_bytes(), fp);
        s.ensure(16);
        assert_eq!(s.n(), 16);
    }

    #[test]
    fn output_sources_reads_lines() {
        let mut s = RouteScratch::new(2).unwrap();
        s.lines[0] = FastLine {
            tag: Tag::Zero,
            src: 1,
            d_lo: 0,
            d_mid: 1,
            d_hi: 1,
            d_val: NO_VAL,
        };
        let v: Vec<Option<usize>> = s.output_sources().collect();
        assert_eq!(v, vec![Some(1), None]);
    }
}
