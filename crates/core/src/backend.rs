//! A common planning/routing interface over every network in the workspace.
//!
//! The serving loop (`brsmn-serve`), the conformance suite
//! (`tests/backend_conformance.rs`), and the CLI all need to drive
//! interchangeable fabrics: the BRSMN fast path, the allocating reference
//! planner, the Section-7.3 feedback network, and the `brsmn-baselines`
//! designs. [`RouterBackend`] is that seam: *plan and route one
//! [`MulticastAssignment`], return the delivered [`RoutingResult`]*.
//!
//! The trait is object-safe and requires `Send + Sync`, so a serving shard
//! can hold `Box<dyn RouterBackend>` and route from any worker thread.
//!
//! Because a multicast assignment determines its delivered source table
//! uniquely (output `o` either receives from the single `i` with
//! `o ∈ I_i`, or is idle), **every** correct backend returns the same
//! `RoutingResult`. Backends whose internals are pinned bit-identical to
//! [`Brsmn::route_reference`] by the equivalence test suites additionally
//! report [`RouterBackend::is_brsmn`] so conformance tests can assert the
//! stronger guarantee.
//!
//! # Example
//!
//! ```
//! use brsmn_core::backend::{ReferenceRouter, RouterBackend};
//! use brsmn_core::{Brsmn, MulticastAssignment};
//!
//! let asg = MulticastAssignment::from_sets(8, vec![
//!     vec![0, 1], vec![], vec![3, 4, 7], vec![2], vec![], vec![], vec![], vec![5, 6],
//! ]).unwrap();
//!
//! let backends: Vec<Box<dyn RouterBackend>> = vec![
//!     Box::new(Brsmn::new(8).unwrap()),
//!     Box::new(ReferenceRouter::new(8).unwrap()),
//! ];
//! for b in &backends {
//!     assert!(b.route_assignment(&asg).unwrap().realizes(&asg));
//! }
//! ```

use crate::assignment::{MulticastAssignment, RoutingResult};
use crate::brsmn::Brsmn;
use crate::engine::{Engine, ShardedEngine};
use crate::error::CoreError;
use crate::feedback::FeedbackBrsmn;

/// A network that can plan and route one multicast assignment.
///
/// `Send + Sync` is part of the contract: backends are shared across
/// serving-shard worker threads behind `&dyn` references.
pub trait RouterBackend: Send + Sync {
    /// Stable, human-readable backend name (used in reports and fixtures).
    fn name(&self) -> &'static str;

    /// Network size `n` (ports on each side).
    fn size(&self) -> usize;

    /// Plans and routes `asg`, returning the delivered source table.
    ///
    /// `asg.n()` must equal [`RouterBackend::size`]; implementations may
    /// panic on a mismatch (the serving loop's admission control rejects
    /// wrong-sized requests before they reach a backend).
    fn route_assignment(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError>;

    /// `true` for backends pinned bit-identical to
    /// [`Brsmn::route_reference`] (the BRSMN family: fast path, reference
    /// planner, feedback network, and the engines built from them).
    fn is_brsmn(&self) -> bool {
        false
    }
}

/// The BRSMN zero-allocation fast path ([`Brsmn::route`]).
impl RouterBackend for Brsmn {
    fn name(&self) -> &'static str {
        "brsmn-fast"
    }

    fn size(&self) -> usize {
        self.n()
    }

    fn route_assignment(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        self.route(asg)
    }

    fn is_brsmn(&self) -> bool {
        true
    }
}

/// The PR-1 allocating reference planner, as its own backend.
///
/// [`Brsmn`] already exposes [`Brsmn::route_reference`], but the trait has
/// one entry point per backend, so the reference planner gets a newtype.
/// This is the ladder's retry router and the oracle every other BRSMN
/// backend is pinned against.
#[derive(Debug, Clone)]
pub struct ReferenceRouter {
    net: Brsmn,
}

impl ReferenceRouter {
    /// A reference planner over an `n × n` BRSMN.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        Ok(ReferenceRouter {
            net: Brsmn::new(n)?,
        })
    }

    /// The underlying network.
    pub fn network(&self) -> &Brsmn {
        &self.net
    }
}

impl RouterBackend for ReferenceRouter {
    fn name(&self) -> &'static str {
        "brsmn-reference"
    }

    fn size(&self) -> usize {
        self.net.n()
    }

    fn route_assignment(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        self.net.route_reference(asg)
    }

    fn is_brsmn(&self) -> bool {
        true
    }
}

/// The Section-7.3 feedback network (single physical RBN, `log n + 1`
/// passes). Per-pass [`crate::FeedbackStats`] are dropped; use
/// [`FeedbackBrsmn::route`] directly when you need them.
impl RouterBackend for FeedbackBrsmn {
    fn name(&self) -> &'static str {
        "brsmn-feedback"
    }

    fn size(&self) -> usize {
        self.n()
    }

    fn route_assignment(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        self.route(asg).map(|(result, _stats)| result)
    }

    fn is_brsmn(&self) -> bool {
        true
    }
}

/// A single-fabric engine routes one-frame batches; instrumentation is
/// dropped (use [`Engine::route_one`] for the stats).
impl RouterBackend for Engine {
    fn name(&self) -> &'static str {
        "brsmn-engine"
    }

    fn size(&self) -> usize {
        self.n()
    }

    fn route_assignment(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        self.route_one(asg).0
    }

    fn is_brsmn(&self) -> bool {
        true
    }
}

/// A sharded engine routes a single frame on its first shard (striping only
/// pays off for batches; see [`ShardedEngine::route_batch`]).
impl RouterBackend for ShardedEngine {
    fn name(&self) -> &'static str {
        "brsmn-sharded"
    }

    fn size(&self) -> usize {
        self.n()
    }

    fn route_assignment(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        let mut out = self.route_batch(std::slice::from_ref(asg));
        out.results.remove(0)
    }

    fn is_brsmn(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_assignment() -> MulticastAssignment {
        MulticastAssignment::from_sets(
            8,
            vec![
                vec![0, 1],
                vec![],
                vec![3, 4, 7],
                vec![2],
                vec![],
                vec![],
                vec![],
                vec![5, 6],
            ],
        )
        .unwrap()
    }

    fn core_backends(n: usize) -> Vec<Box<dyn RouterBackend>> {
        vec![
            Box::new(Brsmn::new(n).unwrap()),
            Box::new(ReferenceRouter::new(n).unwrap()),
            Box::new(FeedbackBrsmn::new(n).unwrap()),
            Box::new(Engine::new(n).unwrap()),
            Box::new(ShardedEngine::new(n, 2).unwrap()),
        ]
    }

    #[test]
    fn all_core_backends_agree_on_paper_example() {
        let asg = paper_assignment();
        let oracle = Brsmn::new(8).unwrap().route_reference(&asg).unwrap();
        for b in core_backends(8) {
            assert_eq!(b.size(), 8, "{}", b.name());
            assert!(b.is_brsmn(), "{}", b.name());
            let r = b.route_assignment(&asg).unwrap();
            assert_eq!(r, oracle, "{} diverged from the reference", b.name());
        }
    }

    #[test]
    fn backend_names_are_distinct() {
        let names: Vec<&str> = core_backends(8).iter().map(|b| b.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }
}
