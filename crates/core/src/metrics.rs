//! Exact cost / depth / routing-time accounting for the networks of the
//! paper (Section 7.4) — closed forms derived from the recursive
//! construction, used by the Table 2 harness and checked against the
//! executable networks in tests.
//!
//! With `m = log2 n`:
//!
//! * RBN: `(n/2)·m` switches, `m` stages.
//! * BSN: two RBNs → `n·m` switches, `2m` stages.
//! * BRSMN: levels `i = 1 … m−1` hold `2^{i−1}` BSNs of size `n/2^{i−1}`
//!   (contributing `n·(m−i+1)` switches each level), plus `n/2` final
//!   switches: `C(n) = n·(m(m+1)/2 − 1) + n/2` switches — `Θ(n log² n)`.
//! * Depth: `D(n) = Σ 2(m−i+1) + 1 = m² + m − 1` stages — `Θ(log² n)`.
//! * Feedback version: one physical RBN → `(n/2)·m` switches — `Θ(n log n)`.

use brsmn_switch::cost::{gates_self_routing, GATES_PER_SWITCH, SWITCH_TRAVERSAL_DELAY};
use brsmn_topology::log2_exact;
use serde::{Deserialize, Serialize};

/// Switch count of an `n × n` reverse banyan network.
pub fn rbn_switches(n: usize) -> u64 {
    (n as u64 / 2) * log2_exact(n) as u64
}

/// Switch count of an `n × n` binary splitting network (scatter +
/// quasisorting RBNs).
pub fn bsn_switches(n: usize) -> u64 {
    2 * rbn_switches(n)
}

/// Switch count of the unfolded `n × n` BRSMN:
/// `n·(m(m+1)/2 − 1) + n/2`.
pub fn brsmn_switches(n: usize) -> u64 {
    let m = log2_exact(n) as u64;
    let n = n as u64;
    n * (m * (m + 1) / 2 - 1) + n / 2
}

/// Switch count of the feedback implementation: a single physical RBN.
pub fn feedback_switches(n: usize) -> u64 {
    rbn_switches(n)
}

/// Stage depth of the unfolded BRSMN: `m² + m − 1`.
pub fn brsmn_depth(n: usize) -> u64 {
    let m = log2_exact(n) as u64;
    m * m + m - 1
}

/// Stage depth of one BSN (`2m`).
pub fn bsn_depth(n: usize) -> u64 {
    2 * log2_exact(n) as u64
}

/// Number of passes the feedback implementation makes through its single
/// RBN: two per BSN level (scatter + quasisort) plus the final switch pass —
/// `2(m − 1) + 1`.
pub fn feedback_passes(n: usize) -> u64 {
    let m = log2_exact(n) as u64;
    2 * (m - 1) + 1
}

/// Total stage traversals experienced by a message in the feedback network:
/// each pass crosses all `m` stages of the physical RBN.
pub fn feedback_depth_traversed(n: usize) -> u64 {
    feedback_passes(n) * log2_exact(n) as u64
}

/// Gate cost of the unfolded BRSMN (`Θ(n log² n)` gates).
pub fn brsmn_gates(n: usize) -> u64 {
    gates_self_routing(brsmn_switches(n))
}

/// Gate cost of the feedback implementation (`Θ(n log n)` gates).
pub fn feedback_gates(n: usize) -> u64 {
    gates_self_routing(feedback_switches(n))
}

/// Data-path latency of the unfolded BRSMN in gate delays (ignores routing
/// set-up; see `brsmn-sim` for the full routing-time model).
pub fn brsmn_traversal_delay(n: usize) -> u64 {
    brsmn_depth(n) * SWITCH_TRAVERSAL_DELAY
}

/// A complete cost sheet for one network instance, as printed by the Table 2
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostSheet {
    /// Network size.
    pub n: usize,
    /// 2×2 switch count.
    pub switches: u64,
    /// Logic-gate count (switches × per-switch constant).
    pub gates: u64,
    /// Stage depth (number of switch stages a message crosses).
    pub depth: u64,
}

impl CostSheet {
    /// Cost sheet of the unfolded BRSMN.
    pub fn brsmn(n: usize) -> Self {
        CostSheet {
            n,
            switches: brsmn_switches(n),
            gates: brsmn_gates(n),
            depth: brsmn_depth(n),
        }
    }

    /// Cost sheet of the feedback implementation. `depth` counts total stage
    /// traversals across all passes (time-like), while `switches`/`gates`
    /// count the single physical RBN (hardware).
    pub fn feedback(n: usize) -> Self {
        CostSheet {
            n,
            switches: feedback_switches(n),
            gates: feedback_gates(n),
            depth: feedback_depth_traversed(n),
        }
    }
}

/// Per-switch gate constant re-exported for harness printing.
pub const GATES_PER_SELF_ROUTING_SWITCH: u64 = GATES_PER_SWITCH;

#[cfg(test)]
mod tests {
    use super::*;

    /// Independently recompute the BRSMN switch count from the recursion
    /// `C(n) = BSN(n) + 2·C(n/2)`, base `C(2) = 1`.
    fn brsmn_switches_recursive(n: usize) -> u64 {
        if n == 2 {
            1
        } else {
            bsn_switches(n) + 2 * brsmn_switches_recursive(n / 2)
        }
    }

    /// Depth recursion `D(n) = 2 log n + D(n/2)`, base `D(2) = 1`.
    fn brsmn_depth_recursive(n: usize) -> u64 {
        if n == 2 {
            1
        } else {
            bsn_depth(n) + brsmn_depth_recursive(n / 2)
        }
    }

    #[test]
    fn closed_form_matches_recursion() {
        for m in 1..=16 {
            let n = 1usize << m;
            assert_eq!(brsmn_switches(n), brsmn_switches_recursive(n), "n={n}");
            assert_eq!(brsmn_depth(n), brsmn_depth_recursive(n), "n={n}");
        }
    }

    #[test]
    fn known_small_values() {
        assert_eq!(rbn_switches(8), 12);
        assert_eq!(bsn_switches(8), 24);
        // n=8, m=3: 8·(6−1) + 4 = 44.
        assert_eq!(brsmn_switches(8), 44);
        // D(8) = 9 + 3 − 1 = 11 stages.
        assert_eq!(brsmn_depth(8), 11);
        assert_eq!(brsmn_switches(2), 1);
        assert_eq!(brsmn_depth(2), 1);
    }

    #[test]
    fn feedback_is_asymptotically_cheaper() {
        // Θ(n log n) vs Θ(n log² n): the exact ratio is m + 1 − 1/m.
        for m in [4u32, 6, 8, 10, 12] {
            let n = 1usize << m;
            let ratio = brsmn_switches(n) as f64 / feedback_switches(n) as f64;
            let expect = m as f64 + 1.0 - 1.0 / m as f64;
            assert!(
                (ratio - expect).abs() < 1e-9,
                "n={n}: ratio {ratio:.4} vs expected {expect:.4}"
            );
        }
    }

    #[test]
    fn feedback_pass_count() {
        assert_eq!(feedback_passes(2), 1);
        assert_eq!(feedback_passes(8), 5);
        assert_eq!(feedback_passes(1024), 19);
    }

    #[test]
    fn gates_scale_with_switches() {
        for n in [4usize, 16, 64] {
            assert_eq!(brsmn_gates(n), brsmn_switches(n) * GATES_PER_SWITCH);
        }
    }

    #[test]
    fn cost_sheets() {
        let s = CostSheet::brsmn(8);
        assert_eq!((s.switches, s.depth), (44, 11));
        let f = CostSheet::feedback(8);
        assert_eq!(f.switches, 12);
        assert_eq!(f.depth, 15); // 5 passes × 3 stages.
    }
}
