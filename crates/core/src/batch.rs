//! SoA batch-parallel planning: route up to [`MAX_BATCH_FRAMES`] same-`n`
//! frames with every plane sweep advanced in lockstep.
//!
//! Cold planning is the dominant cost of any workload the plan cache can't
//! absorb: warm replay skips the sweeps entirely and runs ~2.25x faster
//! than fresh planning. This module attacks the cold path itself. A batch
//! of frames at the same `n` executes the *identical* sweep schedule —
//! levels, blocks, tree nodes and word boundaries are functions of `n`
//! alone — so [`BatchPlanner`] transposes the frames into the
//! structure-of-arrays layout of [`brsmn_rbn::BatchSweep`] and advances one
//! `(level, block)` at a time for *all* frames: derive every frame's entry
//! tags into the SoA planes, check the Eq. (2) capacity constraint for all
//! frames from one word-major pass, plan the scatter and the fused
//! quasisort for all frames in lockstep, then execute each frame's block on
//! its own line buffer. Each frame keeps its own [`RbnSettings`] table and
//! (optionally) its own [`CapturedPlan`], so results, switch settings and
//! captured planes are **bit-for-bit** what the per-frame scalar fast path
//! produces — `crates/bench/tests/simd_equivalence.rs` pins this.
//!
//! Like [`RouteScratch`](crate::fastpath::RouteScratch), the planner is an
//! arena: sized once per `(n, frames)` shape, zero heap allocation per
//! batch thereafter (pinned by the `alloc-count` test in `brsmn-bench`).
//!
//! Error handling is all-or-nothing by design: if any frame fails (capacity
//! overflow, planner error, postcondition violation), the whole batch
//! returns that error and the caller re-routes every frame through the
//! scalar path — per-frame error values then stay byte-identical to
//! single-frame routing, at scalar cost only for the rare failing batch.

use std::cell::RefCell;
use std::time::Instant;

use crate::assignment::{MulticastAssignment, RoutingResult};
use crate::engine::StageTimer;
use crate::error::CoreError;
use crate::fastpath::{
    final_switch_fast, init_lines, leave_block, run_block_fast, verify_delivery, FastLine,
    NO_SRC,
};
use crate::fastpath::entry_tag_line;
use crate::plancache::{CapturedPlan, PHASE_QUASISORT, PHASE_SCATTER};
use brsmn_rbn::{BatchSweep, RbnSettings, RbnWiring};
use brsmn_switch::tag::TagCounts;
use brsmn_switch::Tag;

pub use brsmn_rbn::MAX_BATCH_FRAMES;

/// Reusable SoA batch-routing arena: per-frame line buffers (frame-major),
/// the lockstep [`BatchSweep`], one settings table per frame slot, and the
/// shared counts scratch.
#[derive(Debug, Clone, Default)]
pub struct BatchPlanner {
    n: usize,
    frame_capacity: usize,
    /// Frame-major line buffers: frame `f` owns `lines[f·n .. (f+1)·n]`.
    lines: Vec<FastLine>,
    sweep: BatchSweep,
    settings: Vec<RbnSettings>,
    counts: Vec<TagCounts>,
}

impl BatchPlanner {
    /// An unsized arena; buffers grow on first use.
    pub fn new() -> Self {
        BatchPlanner::default()
    }

    /// The network size this arena is currently sized for (`0` if unused).
    pub fn n(&self) -> usize {
        self.n
    }

    /// (Re)sizes the arena for `frames` frames of an `n × n` network. A
    /// no-op when the current shape already fits — the warm-up allocation
    /// happens once per shape.
    pub fn ensure(&mut self, n: usize, frames: usize) {
        let frames = frames.min(MAX_BATCH_FRAMES).max(1);
        if self.n != n {
            self.n = n;
            self.frame_capacity = 0;
            self.lines.clear();
            self.settings.clear();
        }
        if self.frame_capacity < frames {
            self.lines.resize(frames * n, FastLine::EMPTY);
            while self.settings.len() < frames {
                self.settings.push(RbnSettings::identity(n));
            }
            if self.counts.len() < frames {
                self.counts.resize(frames, TagCounts::default());
            }
            self.frame_capacity = frames;
        }
    }

    /// Approximate heap bytes currently reserved by the arena.
    pub fn footprint_bytes(&self) -> usize {
        let settings_bytes: usize = self
            .settings
            .first()
            .map(|s| {
                (0..s.num_stages())
                    .map(|j| s.stage(j).len() * std::mem::size_of::<brsmn_switch::SwitchSetting>())
                    .sum::<usize>()
                    * self.settings.len()
            })
            .unwrap_or(0);
        self.lines.capacity() * std::mem::size_of::<FastLine>()
            + self.sweep.footprint_bytes()
            + settings_bytes
            + self.counts.capacity() * std::mem::size_of::<TagCounts>()
    }

    /// The delivered sources of frame slot `f` after a successful
    /// [`BatchPlanner::route_frames`], as a fresh [`RoutingResult`].
    pub fn frame_result(&self, f: usize) -> RoutingResult {
        let lines = &self.lines[f * self.n..(f + 1) * self.n];
        RoutingResult::new(
            lines
                .iter()
                .map(|l| {
                    if l.src == NO_SRC {
                        None
                    } else {
                        Some(l.src as usize)
                    }
                })
                .collect(),
        )
    }

    /// [`BatchPlanner::frame_result`] without the allocation: the delivered
    /// source of each output line of frame slot `f`, straight out of the
    /// arena. The `alloc-count` test in `brsmn-bench` pins that reading a
    /// routed batch this way is heap-silent.
    pub fn frame_delivery(&self, f: usize) -> impl Iterator<Item = Option<usize>> + '_ {
        self.lines[f * self.n..(f + 1) * self.n].iter().map(|l| {
            if l.src == NO_SRC {
                None
            } else {
                Some(l.src as usize)
            }
        })
    }

    /// Routes `asgs` end to end with lockstep SoA planning (all frames must
    /// share the arena's `n`). On success the delivered lines of frame `f`
    /// are readable via [`BatchPlanner::frame_result`], and `captures[f]`
    /// (when given) holds frame `f`'s complete captured plan. `timer`
    /// receives exactly the records the scalar path would produce for every
    /// frame (block durations are split evenly across the batch).
    ///
    /// On the first frame error the whole call aborts with that error; the
    /// caller falls back to scalar routing for every frame of the batch.
    pub fn route_frames(
        &mut self,
        wiring: &RbnWiring,
        asgs: &[&MulticastAssignment],
        timer: &mut StageTimer,
        mut captures: Option<&mut [CapturedPlan]>,
    ) -> Result<(), CoreError> {
        let fr = asgs.len();
        assert!(fr >= 1 && fr <= MAX_BATCH_FRAMES, "batch of {fr} frames");
        let n = self.n;
        assert!(n > 0, "ensure() the arena before routing");
        if let Some(caps) = captures.as_deref_mut() {
            assert!(caps.len() >= fr, "one capture slot per frame");
        }
        for asg in asgs {
            assert_eq!(asg.n(), n, "assignment size mismatch");
        }

        let BatchPlanner {
            lines,
            sweep,
            settings,
            counts,
            ..
        } = self;

        for (f, asg) in asgs.iter().enumerate() {
            init_lines(asg, &mut lines[f * n..(f + 1) * n]);
        }

        // Levels 1 … m−1: BSNs of halving size, blocks left to right, every
        // frame advanced through a block before any frame enters the next —
        // the lockstep transpose of the scalar level loop.
        let mut size = n;
        let mut level = 1;
        while size > 2 {
            for b in 0..n / size {
                let base = b * size;
                let mid = base + size / 2;
                let t0 = Instant::now();
                sweep.begin(fr, size);

                // Entry tags fused with the SoA tag packing, all frames in
                // one call (one profiler clock pair per block).
                sweep.load_frames(|f, i| {
                    let line = &mut lines[f * n + base + i];
                    if line.src == NO_SRC {
                        line.tag = Tag::Eps;
                    } else {
                        entry_tag_line(&asgs[f], line, mid);
                    }
                    line.tag
                });

                // Eq. (2) capacity check for all frames from one pass.
                sweep.counts_all(counts);
                for c in counts[..fr].iter() {
                    if !c.satisfies_bsn_input_constraints() {
                        return Err(CoreError::HalfCapacityExceeded {
                            n: size,
                            n0: c.n0,
                            n1: c.n1,
                            na: c.na,
                        });
                    }
                }

                // Scatter: one lockstep plan, then per-frame capture + run.
                sweep.plan_scatter_all(0, base, settings);
                for f in 0..fr {
                    if let Some(caps) = captures.as_deref_mut() {
                        caps[f].store_phase(level, PHASE_SCATTER, base, size, &settings[f]);
                    }
                    run_block_fast(&mut lines[f * n..(f + 1) * n], base, size, &settings[f], wiring)?;
                }

                // Quasisort: reload post-scatter tags, fused lockstep plan,
                // per-frame capture + run + postcondition.
                sweep.load_frames_codes(|f, i| lines[f * n + base + i].tag as u8);
                sweep
                    .plan_quasisort_fused_all(base, settings)
                    .map_err(|(_f, e)| CoreError::from(e))?;
                for f in 0..fr {
                    if let Some(caps) = captures.as_deref_mut() {
                        caps[f].store_phase(level, PHASE_QUASISORT, base, size, &settings[f]);
                    }
                    run_block_fast(&mut lines[f * n..(f + 1) * n], base, size, &settings[f], wiring)?;
                    leave_block(&mut lines[f * n..(f + 1) * n], base, size)?;
                }

                // The scalar path records one BSN per (frame, block); split
                // the lockstep block's wall time evenly so counts match
                // exactly and durations stay additive.
                let share = t0.elapsed() / fr as u32;
                for _ in 0..fr {
                    timer.record_bsn(level, size, share);
                }
            }
            size /= 2;
            level += 1;
        }

        // Final level: n/2 plain 2×2 switches, per frame.
        for (f, asg) in asgs.iter().enumerate() {
            let frame_lines = &mut lines[f * n..(f + 1) * n];
            for lo in (0..n).step_by(2) {
                let t0 = Instant::now();
                let setting = final_switch_fast(asg, frame_lines, lo, &mut None)?;
                if let Some(caps) = captures.as_deref_mut() {
                    caps[f].set_final(lo / 2, setting);
                }
                timer.record_final(t0.elapsed());
            }
            verify_delivery(asg, frame_lines)?;
        }

        // Drain the lockstep sweep's per-op profile into the batch timer.
        timer.plan_profile.merge(&sweep.take_profile());
        Ok(())
    }
}

thread_local! {
    static TLS_BATCH: RefCell<BatchPlanner> = RefCell::new(BatchPlanner::new());
}

/// Runs `f` with this thread's [`BatchPlanner`], sized for `frames` frames
/// of an `n × n` network. The arena persists for the life of the thread —
/// each engine worker reuses its SoA buffers across batches.
pub fn with_thread_batch_planner<R>(
    n: usize,
    frames: usize,
    f: impl FnOnce(&mut BatchPlanner) -> R,
) -> R {
    TLS_BATCH.with(|s| {
        let mut s = s.borrow_mut();
        s.ensure(n, frames);
        f(&mut s)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brsmn::Brsmn;

    fn dense_frames(n: usize, count: usize, seed: u64) -> Vec<MulticastAssignment> {
        let mut state = seed;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..count)
            .map(|_| {
                let mut sets = vec![Vec::new(); n];
                // Assign each output to a random input (full load; dests
                // stay sorted because d is ascending).
                for d in 0..n {
                    sets[rng() as usize % n].push(d);
                }
                MulticastAssignment::from_sets(n, sets).unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_routing_matches_scalar_per_frame() {
        for n in [8usize, 16, 64] {
            let net = Brsmn::new(n).unwrap();
            let frames = dense_frames(n, 9, 0x1234_5678 + n as u64);
            let refs: Vec<&MulticastAssignment> = frames.iter().collect();
            let mut planner = BatchPlanner::new();
            planner.ensure(n, frames.len());
            let mut timer = StageTimer::new();
            planner
                .route_frames(net.wiring(), &refs, &mut timer, None)
                .unwrap();
            for (f, asg) in frames.iter().enumerate() {
                assert_eq!(planner.frame_result(f), net.route(asg).unwrap(), "n={n} f={f}");
            }
        }
    }

    #[test]
    fn batch_captures_replay_bit_identically() {
        let n = 16;
        let net = Brsmn::new(n).unwrap();
        let frames = dense_frames(n, 5, 0xBEEF);
        let refs: Vec<&MulticastAssignment> = frames.iter().collect();
        let mut planner = BatchPlanner::new();
        planner.ensure(n, frames.len());
        let mut captures: Vec<CapturedPlan> = (0..frames.len())
            .map(|_| CapturedPlan::new(n).unwrap())
            .collect();
        let mut timer = StageTimer::new();
        planner
            .route_frames(net.wiring(), &refs, &mut timer, Some(&mut captures))
            .unwrap();
        crate::fastpath::with_thread_scratch(n, |scratch| {
            for (f, asg) in frames.iter().enumerate() {
                // The captured plan must equal a scalar capture of the same
                // frame and replay to the same result.
                let (scalar_res, scalar_plan) = net.route_capture(asg, scratch).unwrap();
                assert_eq!(captures[f], scalar_plan, "f={f}");
                let replayed = net.route_replay(asg, &captures[f], scratch).unwrap();
                assert_eq!(replayed, scalar_res, "f={f}");
            }
        });
    }

    #[test]
    fn arena_reuses_buffers_across_shapes() {
        let mut planner = BatchPlanner::new();
        planner.ensure(16, 8);
        let fp = planner.footprint_bytes();
        planner.ensure(16, 4);
        assert_eq!(planner.footprint_bytes(), fp, "smaller batch reuses");
        planner.ensure(16, 8);
        assert_eq!(planner.footprint_bytes(), fp, "same shape is a no-op");
    }
}
