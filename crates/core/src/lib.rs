//! The binary radix sorting multicast network (BRSMN) — the core library of
//! this reproduction of Yang & Wang, *"A New Self-Routing Multicast
//! Network"* (IPPS/SPDP 1998; IEEE TPDS 10(11), 1999).
//!
//! A **multicast network** realizes every multicast assignment between its
//! `n` inputs and `n` outputs over edge-disjoint trees, without blocking.
//! This crate implements the paper's design end to end:
//!
//! * [`assignment`] — multicast assignments `{I_0, …, I_{n−1}}` and routing
//!   results;
//! * [`backend`] — the [`RouterBackend`] trait making every fabric (fast
//!   path, reference, feedback, engines, baselines) interchangeable to the
//!   serving loop and conformance suite;
//! * [`tags`] — the tagged binary tree of a multicast and the `SEQ` wire
//!   format the self-routing hardware consumes (Section 7.1);
//! * [`payload`] — the two message models: semantic (reference) and
//!   self-routed (faithful);
//! * [`bsn`] — the binary splitting network: scatter + quasisorting RBNs
//!   (Section 3);
//! * [`brsmn`] — the recursive network of Fig. 1 with both engines and full
//!   tracing;
//! * [`fastpath`] — the zero-allocation routing fast path: reusable
//!   [`RouteScratch`] arenas over the packed-word planners of `brsmn-rbn`;
//! * [`plancache`] — plan capture and replay: the self-routing property
//!   makes settings a pure function of the assignment, so a routed frame's
//!   full setting tensor is snapshotted once ([`CapturedPlan`]) and served
//!   again through a two-tier sharded LRU [`PlanCache`] at execution-only
//!   cost — exact recurrences replay directly, *relabeled* recurrences
//!   replay through the canonical tier's permuted executor, and the whole
//!   working set persists across restarts via snapshots;
//! * [`canonical`] — canonicalization of assignments up to input/output
//!   relabeling ([`canonicalize`]), the equivalence the cache's canonical
//!   tier keys on;
//! * [`feedback`] — the single-RBN feedback implementation (Section 7.3)
//!   cutting hardware to `Θ(n log n)`;
//! * [`metrics`] — exact switch/gate/depth accounting (Section 7.4);
//! * [`verify`] — post-route output verification with fault localization,
//!   feeding the engine's graceful-degradation ladder
//!   ([`engine::ResilientRouter`]).
//!
//! # Quickstart
//!
//! ```
//! use brsmn_core::{Brsmn, MulticastAssignment};
//!
//! // The running example of Section 2.
//! let asg = MulticastAssignment::from_sets(8, vec![
//!     vec![0, 1], vec![], vec![3, 4, 7], vec![2], vec![], vec![], vec![], vec![5, 6],
//! ]).unwrap();
//!
//! let net = Brsmn::new(8).unwrap();
//! let result = net.route(&asg).unwrap();
//! assert!(result.realizes(&asg));
//!
//! // The self-routing engine (switches see only tag streams) agrees:
//! assert_eq!(result, net.route_self_routing(&asg).unwrap());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod algebra;
pub mod assignment;
pub mod backend;
pub mod batch;
pub mod brsmn;
pub mod bsn;
pub mod canonical;
pub mod engine;
pub mod error;
pub mod fastpath;
pub mod feedback;
pub mod metrics;
pub mod payload;
pub mod plancache;
pub mod render;
pub mod stream;
pub mod tags;
pub mod verify;

pub use algebra::{idle_outputs, relabel_inputs, relabel_outputs, restrict, union};
pub use assignment::{AssignmentError, MulticastAssignment, RoutingResult};
pub use backend::{ReferenceRouter, RouterBackend};
pub use batch::{with_thread_batch_planner, BatchPlanner, MAX_BATCH_FRAMES};
pub use brsmn::{Brsmn, LevelTrace, RouteTrace};
pub use bsn::{Bsn, BsnTrace};
pub use canonical::{canonicalize, invert_permutation, Canonicalized};
pub use engine::{
    BatchOutput, Engine, EngineConfig, EngineStats, FrameOutcome, LevelStats, ResilientRouter,
    ShardedEngine, StageTimer,
};
pub use brsmn_rbn::PlanOpProfile;
pub use error::CoreError;
pub use fastpath::{with_thread_scratch, RouteScratch};
pub use feedback::{FeedbackBrsmn, FeedbackStats};
pub use payload::{RoutePayload, SelfRoutedMsg, SemanticMsg};
pub use plancache::{
    fingerprint_inputs, plan_fingerprint, CanonicalHit, CapturedPlan, PlanCache, PlanCacheSnapshot,
    PlanCacheStats, PlanSnapshotEntry, SnapshotError, SnapshotLoadStats, SNAPSHOT_VERSION,
};
pub use render::{render_rbn, render_trace};
pub use stream::{stream_split, ForwardMode, StreamSplitter};
pub use tags::{seq_for_dests, TagSeq, TagTree};
pub use verify::{verify_routing, Divergence, FaultReport};
