//! Algebra on multicast assignments: union, restriction, relabeling and
//! composition with permutations — the operations a switching layer uses to
//! build, split and post-process traffic, with the laws the BRSMN engines
//! are tested against.

use crate::assignment::{AssignmentError, MulticastAssignment};

/// Disjoint union: combines two assignments whose destination sets do not
/// overlap *and* whose active inputs do not collide (an input may appear in
/// only one operand). Fails with the usual validation errors otherwise.
pub fn union(
    a: &MulticastAssignment,
    b: &MulticastAssignment,
) -> Result<MulticastAssignment, AssignmentError> {
    assert_eq!(a.n(), b.n(), "operand sizes must match");
    let n = a.n();
    let mut sets = Vec::with_capacity(n);
    for i in 0..n {
        let (da, db) = (a.dests(i), b.dests(i));
        if !da.is_empty() && !db.is_empty() {
            // Same input active in both: only allowed if one is a subset
            // scenario we don't support — treat as overlap on its first dest.
            return Err(AssignmentError::OverlappingDest {
                dest: da[0],
                first: i,
                second: i,
            });
        }
        let mut d = da.to_vec();
        d.extend_from_slice(db);
        sets.push(d);
    }
    MulticastAssignment::from_sets(n, sets)
}

/// Restriction: keeps only the connections whose destination satisfies
/// `keep`. Inputs whose whole set is dropped become idle.
pub fn restrict(
    a: &MulticastAssignment,
    mut keep: impl FnMut(usize) -> bool,
) -> MulticastAssignment {
    let n = a.n();
    let sets = (0..n)
        .map(|i| a.dests(i).iter().copied().filter(|&d| keep(d)).collect())
        .collect();
    MulticastAssignment::from_sets(n, sets).expect("restriction preserves disjointness")
}

/// Output relabeling: applies the permutation `perm` (a bijection on
/// `0..n`) to every destination: `d ↦ perm[d]`.
///
/// Together with [`relabel_inputs`] this generates the relabeling
/// equivalence the plan cache's canonical tier keys on
/// ([`crate::canonicalize`]): two assignments that differ only by port
/// relabelings share one captured plan.
///
/// ```
/// use brsmn_core::{relabel_outputs, MulticastAssignment};
///
/// let a = MulticastAssignment::from_sets(4, vec![vec![0, 2], vec![3], vec![], vec![]]).unwrap();
/// let rotate: Vec<usize> = (0..4).map(|d| (d + 1) % 4).collect();
/// let b = relabel_outputs(&a, &rotate);
/// assert_eq!(b.dests(0), &[1, 3]); // 0 ↦ 1, 2 ↦ 3
/// assert_eq!(b.dests(1), &[0]);    // 3 ↦ 0
/// ```
pub fn relabel_outputs(a: &MulticastAssignment, perm: &[usize]) -> MulticastAssignment {
    let n = a.n();
    assert_eq!(perm.len(), n);
    let sets = (0..n)
        .map(|i| a.dests(i).iter().map(|&d| perm[d]).collect())
        .collect();
    MulticastAssignment::from_sets(n, sets).expect("bijection preserves disjointness")
}

/// Input relabeling: moves input `i`'s destination set to input `perm[i]`.
///
/// Fanouts are preserved, so relabeling never changes an assignment's
/// canonical representative ([`crate::canonicalize`]) — the property the
/// plan cache's canonical tier exploits to replay one captured plan for a
/// whole relabeling class.
///
/// ```
/// use brsmn_core::{canonicalize, relabel_inputs, MulticastAssignment};
///
/// let a = MulticastAssignment::from_sets(4, vec![vec![1, 2], vec![], vec![0], vec![]]).unwrap();
/// let swap = vec![3usize, 1, 0, 2]; // input 0 ↦ 3, input 2 ↦ 0
/// let b = relabel_inputs(&a, &swap);
/// assert_eq!(b.dests(3), &[1, 2]);
/// assert_eq!(b.dests(0), &[0]);
/// assert_eq!(canonicalize(&a).canonical, canonicalize(&b).canonical);
/// ```
pub fn relabel_inputs(a: &MulticastAssignment, perm: &[usize]) -> MulticastAssignment {
    let n = a.n();
    assert_eq!(perm.len(), n);
    let mut sets = vec![Vec::new(); n];
    for i in 0..n {
        sets[perm[i]] = a.dests(i).to_vec();
    }
    MulticastAssignment::from_sets(n, sets).expect("bijection preserves disjointness")
}

/// The coverage complement: outputs not reached by any input.
pub fn idle_outputs(a: &MulticastAssignment) -> Vec<usize> {
    (0..a.n())
        .filter(|&o| a.source_of_output(o).is_none())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Brsmn;

    fn asg(n: usize, sets: Vec<Vec<usize>>) -> MulticastAssignment {
        MulticastAssignment::from_sets(n, sets).unwrap()
    }

    #[test]
    fn union_of_disjoint_assignments() {
        let a = asg(8, vec![vec![0, 1], vec![], vec![], vec![], vec![], vec![], vec![], vec![]]);
        let b = asg(8, vec![vec![], vec![], vec![5], vec![], vec![], vec![], vec![], vec![6, 7]]);
        let u = union(&a, &b).unwrap();
        assert_eq!(u.dests(0), &[0, 1]);
        assert_eq!(u.dests(2), &[5]);
        assert_eq!(u.total_connections(), 5);
    }

    #[test]
    fn union_rejects_overlap() {
        let a = asg(4, vec![vec![1], vec![], vec![], vec![]]);
        let b = asg(4, vec![vec![], vec![1], vec![], vec![]]);
        assert!(union(&a, &b).is_err());
        // Same input active in both operands is also rejected.
        let c = asg(4, vec![vec![2], vec![], vec![], vec![]]);
        assert!(union(&a, &c).is_err());
    }

    #[test]
    fn union_routes_like_its_parts() {
        // Routing the union delivers exactly the per-part connections.
        let a = asg(8, vec![vec![0, 3], vec![], vec![], vec![], vec![], vec![], vec![], vec![]]);
        let b = asg(8, vec![vec![], vec![], vec![], vec![], vec![5], vec![], vec![], vec![1, 6]]);
        let u = union(&a, &b).unwrap();
        let net = Brsmn::new(8).unwrap();
        let r = net.route(&u).unwrap();
        assert!(r.realizes(&u));
        for o in [0usize, 3] {
            assert_eq!(r.output_source(o), Some(0));
        }
        assert_eq!(r.output_source(5), Some(4));
        assert_eq!(r.output_source(1), Some(7));
    }

    #[test]
    fn restrict_drops_connections() {
        let a = asg(8, vec![vec![0, 1, 4, 5], vec![], vec![2, 6], vec![], vec![], vec![], vec![], vec![]]);
        let upper = restrict(&a, |d| d < 4);
        assert_eq!(upper.dests(0), &[0, 1]);
        assert_eq!(upper.dests(2), &[2]);
        assert_eq!(upper.total_connections(), 3);
        // Restriction then union with its complement reconstructs the whole.
        let lower = restrict(&a, |d| d >= 4);
        let back = union(&upper, &lower);
        // Same inputs active in both halves → union rejects; verify instead
        // that connection sets partition.
        assert!(back.is_err());
        assert_eq!(
            upper.total_connections() + lower.total_connections(),
            a.total_connections()
        );
    }

    #[test]
    fn relabel_outputs_by_rotation() {
        let a = asg(4, vec![vec![0], vec![1], vec![], vec![3]]);
        let rot: Vec<usize> = (0..4).map(|d| (d + 1) % 4).collect();
        let b = relabel_outputs(&a, &rot);
        assert_eq!(b.dests(0), &[1]);
        assert_eq!(b.dests(1), &[2]);
        assert_eq!(b.dests(3), &[0]);
        // Routing commutes with output relabeling.
        let net = Brsmn::new(4).unwrap();
        let ra = net.route(&a).unwrap();
        let rb = net.route(&b).unwrap();
        for (o, &ro) in rot.iter().enumerate() {
            assert_eq!(rb.output_source(ro), ra.output_source(o));
        }
    }

    #[test]
    fn relabel_inputs_moves_sources() {
        let a = asg(4, vec![vec![2, 3], vec![], vec![], vec![]]);
        let swap = vec![1usize, 0, 3, 2];
        let b = relabel_inputs(&a, &swap);
        assert_eq!(b.dests(1), &[2, 3]);
        assert!(b.dests(0).is_empty());
    }

    #[test]
    fn idle_outputs_complement_coverage() {
        let a = asg(8, vec![vec![0, 7], vec![], vec![3], vec![], vec![], vec![], vec![], vec![]]);
        assert_eq!(idle_outputs(&a), vec![1, 2, 4, 5, 6]);
    }
}
