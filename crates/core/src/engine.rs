//! Batched, multi-threaded routing engine with per-stage instrumentation.
//!
//! The sequential router in [`crate::brsmn`] answers "is the construction
//! correct?". This module answers "how fast can a software realization go?"
//! by exploiting the two sources of parallelism the BRSMN has by design:
//!
//! 1. **Frame-level** — distinct multicast assignments ("frames") share no
//!    state, so a batch is spread across a scoped-thread worker pool
//!    ([`brsmn_rbn::par::par_map`]). Output order is deterministic: results
//!    are reassembled by frame index.
//! 2. **Intra-network** — after the level-`i` BSN splits a block, the upper
//!    and lower `n/2 × n/2` sub-BRSMNs are independent (Fig. 1) and recurse
//!    concurrently ([`brsmn_rbn::par::join`]), up to a configurable fork
//!    depth.
//!
//! Both paths are **bit-identical** to the sequential engine: parallel
//! halves compute disjoint output ranges that are concatenated in order, and
//! the worker pool never reorders frames. Property tests in
//! `tests/engine_equivalence.rs` pin this down.
//!
//! Every route is instrumented by a [`StageTimer`]: per-level wall time,
//! blocks routed, switch settings computed, and planner sweep passes, rolled
//! up into an [`EngineStats`] that serializes to JSON for the benchmark
//! harness (`brsmn-bench`) and the `brsmn-cli route --parallel --stats`
//! path.
//!
//! # Example
//!
//! ```
//! use brsmn_core::{Engine, EngineConfig, MulticastAssignment};
//!
//! let batch: Vec<MulticastAssignment> = (0..8)
//!     .map(|s| {
//!         let mut sets = vec![Vec::new(); 8];
//!         sets[s % 8] = (0..8).collect(); // one broadcast per frame
//!         MulticastAssignment::from_sets(8, sets).unwrap()
//!     })
//!     .collect();
//!
//! let engine = Engine::with_config(8, EngineConfig::batch(2)).unwrap();
//! let out = engine.route_batch(&batch);
//! assert_eq!(out.results.len(), 8);
//! assert!(out.results.iter().all(|r| r.is_ok()));
//! assert_eq!(out.stats.frames_ok, 8);
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::assignment::{MulticastAssignment, RoutingResult};
use crate::brsmn::{final_switch, Brsmn};
use crate::bsn::Bsn;
use crate::error::CoreError;
use crate::payload::{RoutePayload, SelfRoutedMsg, SemanticMsg};
use crate::plancache::{plan_fingerprint, CanonicalHit, CapturedPlan, PlanCache};
use crate::verify::{verify_routing, FaultReport};
use brsmn_rbn::par;
use brsmn_rbn::PlanOpProfile;
use brsmn_switch::{Line, Tag};
use brsmn_topology::log2_exact;
use serde::{Deserialize, Serialize};

/// Blocks smaller than this are never forked: the spawn/join cost of a
/// scoped thread dwarfs the work in a tiny sub-BRSMN.
const MIN_FORK_BLOCK: usize = 32;

/// Planner tree sweeps per BSN: scatter (forward + backward), ε-divide
/// (forward + backward), bit sort (forward + backward).
const SWEEPS_PER_BSN: u64 = 6;

/// How the [`Engine`] parallelizes and which message model it routes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Worker threads for frame-level parallelism; `0` = one per hardware
    /// thread.
    pub workers: usize,
    /// Route the two sub-BRSMN halves of each split concurrently.
    pub parallel_halves: bool,
    /// Levels of the recursion allowed to fork when `parallel_halves` is on
    /// (depth `d` forks at most `2^d − 1` extra threads per frame).
    pub fork_depth: usize,
    /// Route semantic batches on the zero-allocation fast path, each worker
    /// reusing a thread-local [`crate::fastpath::RouteScratch`]. Off
    /// (`--no-scratch` in the CLI) falls back to the PR-1 allocating
    /// reference router; results are bit-identical either way.
    pub use_scratch: bool,
    /// Capacity (in captured plans) of the shared [`PlanCache`] consulted
    /// before planning each fast-path frame; `0` disables the cache. A hit
    /// replays the snapshotted switch-setting planes bit-identically at
    /// execution-only cost; a miss plans as usual while capturing the plan
    /// for next time. Only the fast path consults the cache — the reference
    /// and self-routing models always plan fresh.
    pub plan_cache: usize,
    /// Group the cache-miss frames of a multi-frame batch into SoA chunks
    /// planned in lockstep by the [`crate::BatchPlanner`] (up to
    /// [`crate::MAX_BATCH_FRAMES`] frames per chunk) while cache hits keep
    /// replaying. Off (`--no-batch-plan` in the CLI) plans every frame
    /// individually; results, stats and cache behavior are bit-identical
    /// either way — only the planning schedule differs.
    pub batch_plan: bool,
}

impl Default for EngineConfig {
    /// Frame-level parallelism on every hardware thread, no intra-frame
    /// forking — the right default for batches.
    fn default() -> Self {
        EngineConfig::batch(0)
    }
}

impl EngineConfig {
    /// Frame-level parallelism only, across `workers` threads (`0` = auto).
    /// Best when the batch is large relative to the worker count.
    pub fn batch(workers: usize) -> Self {
        EngineConfig {
            workers,
            parallel_halves: false,
            fork_depth: 0,
            use_scratch: true,
            plan_cache: 0,
            batch_plan: true,
        }
    }

    /// Sequential reference configuration: one worker, no forking. The
    /// engine then matches [`Brsmn::route`] exactly while still collecting
    /// [`EngineStats`].
    pub fn sequential() -> Self {
        EngineConfig {
            workers: 1,
            parallel_halves: false,
            fork_depth: 0,
            use_scratch: true,
            plan_cache: 0,
            batch_plan: true,
        }
    }

    /// Intra-network parallelism for latency-sensitive single frames: the
    /// two halves of the first `fork_depth` levels recurse concurrently.
    pub fn single_frame(fork_depth: usize) -> Self {
        EngineConfig {
            workers: 1,
            parallel_halves: true,
            fork_depth,
            use_scratch: true,
            plan_cache: 0,
            batch_plan: true,
        }
    }

    /// Disables the scratch-arena fast path (see
    /// [`EngineConfig::use_scratch`]).
    pub fn without_scratch(mut self) -> Self {
        self.use_scratch = false;
        self
    }

    /// Enables the plan-capture cache with room for `capacity` captured
    /// plans (see [`EngineConfig::plan_cache`]; `0` disables).
    pub fn with_plan_cache(mut self, capacity: usize) -> Self {
        self.plan_cache = capacity;
        self
    }

    /// Disables SoA batch-parallel planning (see
    /// [`EngineConfig::batch_plan`]).
    pub fn without_batch_plan(mut self) -> Self {
        self.batch_plan = false;
        self
    }
}

/// Wall time and work counters for one BSN level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStats {
    /// BSN blocks routed at this level (summed over the batch).
    pub blocks: u64,
    /// Wall time spent in those blocks, nanoseconds. When halves run in
    /// parallel this sums the per-thread times, so levels below a fork
    /// can exceed elapsed wall time.
    pub nanos: u64,
}

/// Accumulates per-stage instrumentation during a route.
///
/// One timer lives on each worker (and each forked half); [`StageTimer::merge`]
/// folds them into the batch total. Exposed so external drivers (benches,
/// the CLI) can instrument custom routing loops.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimer {
    /// Per-level counters, index `i` = BSN level `i + 1`.
    pub levels: Vec<LevelStats>,
    /// 2×2 switches set in the final stage.
    pub final_switches: u64,
    /// Wall time in the final stage, nanoseconds.
    pub final_nanos: u64,
    /// Total 2×2 switch settings computed (both RBNs of every BSN, plus the
    /// final stage).
    pub switch_settings: u64,
    /// Planner tree sweeps executed (forward/backward waves of the scatter,
    /// ε-divide and bit-sort planners).
    pub sweep_passes: u64,
    /// Per-op planning profile: what the sweeps spent their time on. Op
    /// counts are always exact; nanosecond totals are nonzero only when the
    /// `plan-profile` feature is compiled in.
    pub plan_profile: PlanOpProfile,
}

impl StageTimer {
    /// A fresh, empty timer.
    pub fn new() -> Self {
        StageTimer::default()
    }

    /// Records one BSN of `size` lines routed at 1-based `level`.
    pub fn record_bsn(&mut self, level: usize, size: usize, elapsed: Duration) {
        if self.levels.len() < level {
            self.levels.resize(level, LevelStats::default());
        }
        let slot = &mut self.levels[level - 1];
        slot.blocks += 1;
        slot.nanos += elapsed.as_nanos() as u64;
        // Scatter RBN + quasisorting RBN: 2 · (size/2) · log2(size) settings.
        self.switch_settings += (size as u64) * u64::from(log2_exact(size));
        self.sweep_passes += SWEEPS_PER_BSN;
    }

    /// Records one BSN of `size` lines **replayed** from a captured plan at
    /// 1-based `level`. The replayed settings count toward
    /// [`StageTimer::switch_settings`] (they were applied to the fabric) but
    /// not toward [`StageTimer::sweep_passes`] — no planner sweep ran, which
    /// is exactly the work the cache elides.
    pub fn record_bsn_replay(&mut self, level: usize, size: usize, elapsed: Duration) {
        if self.levels.len() < level {
            self.levels.resize(level, LevelStats::default());
        }
        let slot = &mut self.levels[level - 1];
        slot.blocks += 1;
        slot.nanos += elapsed.as_nanos() as u64;
        self.switch_settings += (size as u64) * u64::from(log2_exact(size));
    }

    /// Records one final-stage 2×2 switch.
    pub fn record_final(&mut self, elapsed: Duration) {
        self.final_switches += 1;
        self.final_nanos += elapsed.as_nanos() as u64;
        self.switch_settings += 1;
    }

    /// Folds another timer (a worker's or a forked half's) into this one.
    pub fn merge(&mut self, other: &StageTimer) {
        if self.levels.len() < other.levels.len() {
            self.levels.resize(other.levels.len(), LevelStats::default());
        }
        for (slot, o) in self.levels.iter_mut().zip(&other.levels) {
            slot.blocks += o.blocks;
            slot.nanos += o.nanos;
        }
        self.final_switches += other.final_switches;
        self.final_nanos += other.final_nanos;
        self.switch_settings += other.switch_settings;
        self.sweep_passes += other.sweep_passes;
        self.plan_profile.merge(&other.plan_profile);
    }
}

/// Aggregate instrumentation for one batch route, serializable to JSON.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Network size.
    pub n: usize,
    /// Frames in the batch.
    pub batch: usize,
    /// Worker threads actually used for frame-level parallelism.
    pub workers: usize,
    /// Whether sub-BRSMN halves recursed concurrently.
    pub parallel_halves: bool,
    /// Frames routed successfully.
    pub frames_ok: usize,
    /// Frames that returned an error (or, on the resilient path, exhausted
    /// the whole retry ladder without producing a verified result).
    pub frames_failed: usize,
    /// Frames whose primary attempt failed verification but that recovered
    /// on the reference-router retry
    /// ([`Engine::route_batch_resilient`]; always 0 on the plain paths).
    pub frames_retried: usize,
    /// Frames that recovered only via the degraded re-plan stage of the
    /// retry ladder (always 0 on the plain paths).
    pub frames_degraded: usize,
    /// Per-stage counters summed over all frames and workers.
    pub stages: StageTimer,
    /// End-to-end wall time for the whole batch, nanoseconds.
    pub wall_nanos: u64,
    /// Sum of per-frame route times, nanoseconds. `busy_nanos / wall_nanos`
    /// approximates the achieved parallel speedup.
    pub busy_nanos: u64,
    /// Frames routed on the zero-allocation fast path (0 when
    /// [`EngineConfig::use_scratch`] is off or the model forces the
    /// reference router).
    pub fastpath_frames: u64,
    /// Largest per-worker scratch-arena footprint observed, bytes (0 on the
    /// reference path).
    pub scratch_bytes: u64,
    /// Frames served by replaying a captured plan from the [`PlanCache`] —
    /// exact and canonical tiers combined (0 when
    /// [`EngineConfig::plan_cache`] is 0).
    pub plan_hits: u64,
    /// Fast-path frames that missed both cache tiers and planned fresh
    /// while capturing (equals `fastpath_frames` when the cache is cold or
    /// off).
    pub plan_misses: u64,
    /// The subset of `plan_hits` served by the exact tier (the stored
    /// assignment equalled the frame's).
    pub plan_exact_hits: u64,
    /// The subset of `plan_hits` served by the canonical tier: the frame
    /// was a *relabeling* of a cached plan's assignment, replayed through
    /// the permuted executor.
    pub plan_canonical_hits: u64,
    /// Captured plans evicted from the cache during this batch (LRU
    /// pressure across both tiers; 0 until the cache overflows its
    /// capacity).
    pub plan_evictions: u64,
    /// Resident footprint of the plan cache at the end of the batch, bytes
    /// (packed setting planes plus keys; 0 with the cache off).
    pub plan_cache_bytes: u64,
    /// Plans the cache was warm-started with from a persisted snapshot
    /// (cumulative over the cache's lifetime; 0 without
    /// `PlanCache::load_snapshot`).
    pub plan_snapshot_loaded: u64,
    /// Width, in `u64` words, of the SIMD lane blocks the fast path's
    /// plane sweeps ran on ([`brsmn_rbn::LANES`]). 0 on the reference
    /// path, whose array-based planners don't vectorize. Merges by max.
    pub simd_lane_width: u64,
    /// Frames planned in lockstep SoA chunks by the
    /// [`crate::BatchPlanner`] — a subset of `plan_misses` when the cache
    /// is on (hits keep replaying) and of `fastpath_frames` always. 0 with
    /// [`EngineConfig::batch_plan`] off, for single-frame batches, and for
    /// frames that fell back to per-frame scalar planning.
    pub batch_planned_frames: u64,
    /// Live member nodes of the distributed control plane that striped
    /// this batch (`brsmn-cluster`'s `DistributedEngine`; 0 for
    /// single-process engines). Merges by max.
    pub cluster_nodes: u64,
    /// Control-plane messages delivered so far by the cluster's virtual
    /// network (cumulative over the cluster's lifetime, like
    /// `plan_snapshot_loaded`; 0 single-process). Merges by max.
    pub cluster_messages: u64,
    /// Control-plane messages lost to simulated drops or partitions
    /// (cumulative; 0 single-process). Merges by max.
    pub cluster_messages_dropped: u64,
    /// Membership epoch the cluster had agreed on when the batch routed
    /// (0 single-process and before any reconfiguration). Merges by max.
    pub cluster_epoch: u64,
}

impl EngineStats {
    /// Frames routed per second of wall time.
    pub fn frames_per_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.batch as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// `busy / wall` — effective parallelism achieved by the batch.
    pub fn speedup(&self) -> f64 {
        if self.wall_nanos == 0 {
            1.0
        } else {
            self.busy_nanos as f64 / self.wall_nanos as f64
        }
    }

    /// An empty stats record for an `n`-port fabric — the identity of
    /// [`EngineStats::merge`], for accumulating shard or round totals.
    pub fn empty(n: usize) -> Self {
        EngineStats {
            n,
            batch: 0,
            workers: 0,
            parallel_halves: false,
            frames_ok: 0,
            frames_failed: 0,
            frames_retried: 0,
            frames_degraded: 0,
            stages: StageTimer::new(),
            wall_nanos: 0,
            busy_nanos: 0,
            fastpath_frames: 0,
            scratch_bytes: 0,
            plan_hits: 0,
            plan_misses: 0,
            plan_exact_hits: 0,
            plan_canonical_hits: 0,
            plan_evictions: 0,
            plan_cache_bytes: 0,
            plan_snapshot_loaded: 0,
            simd_lane_width: 0,
            batch_planned_frames: 0,
            cluster_nodes: 0,
            cluster_messages: 0,
            cluster_messages_dropped: 0,
            cluster_epoch: 0,
        }
    }

    /// Folds another stats record (a shard's, or a later round's) into this
    /// one.
    ///
    /// Work counters (`batch`, frame outcomes, stage counters, `busy_nanos`,
    /// `fastpath_frames`, plan-cache hit/miss/eviction tallies) and
    /// `workers` add; `scratch_bytes` and `plan_cache_bytes` take the max
    /// (arenas are per worker and shards share one cache, so adding would
    /// double-count); `wall_nanos` takes the max,
    /// which is exact for shards running concurrently — drivers that know
    /// the true end-to-end wall time (e.g. [`ShardedEngine::route_batch`],
    /// the serving loop) overwrite it after merging.
    pub fn merge(&mut self, other: &EngineStats) {
        debug_assert_eq!(self.n, other.n, "merging stats across network sizes");
        self.batch += other.batch;
        self.workers += other.workers;
        self.parallel_halves |= other.parallel_halves;
        self.frames_ok += other.frames_ok;
        self.frames_failed += other.frames_failed;
        self.frames_retried += other.frames_retried;
        self.frames_degraded += other.frames_degraded;
        self.stages.merge(&other.stages);
        self.wall_nanos = self.wall_nanos.max(other.wall_nanos);
        self.busy_nanos += other.busy_nanos;
        self.fastpath_frames += other.fastpath_frames;
        self.scratch_bytes = self.scratch_bytes.max(other.scratch_bytes);
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
        self.plan_exact_hits += other.plan_exact_hits;
        self.plan_canonical_hits += other.plan_canonical_hits;
        self.plan_evictions += other.plan_evictions;
        self.plan_cache_bytes = self.plan_cache_bytes.max(other.plan_cache_bytes);
        // Snapshot loads are a cache-lifetime tally shared by every shard
        // holding the cache, so max (like the footprint), not sum.
        self.plan_snapshot_loaded = self.plan_snapshot_loaded.max(other.plan_snapshot_loaded);
        // The lane width is a property of the code path, not a tally.
        self.simd_lane_width = self.simd_lane_width.max(other.simd_lane_width);
        self.batch_planned_frames += other.batch_planned_frames;
        // Cluster figures are cluster-wide lifetime values (every node's
        // stats record reports the same shared control plane), so max.
        self.cluster_nodes = self.cluster_nodes.max(other.cluster_nodes);
        self.cluster_messages = self.cluster_messages.max(other.cluster_messages);
        self.cluster_messages_dropped = self
            .cluster_messages_dropped
            .max(other.cluster_messages_dropped);
        self.cluster_epoch = self.cluster_epoch.max(other.cluster_epoch);
    }
}

/// Result of routing a batch: per-frame outcomes (in input order) plus the
/// aggregated instrumentation.
#[derive(Debug, Clone)]
pub struct BatchOutput {
    /// One result per input frame, order preserved.
    pub results: Vec<Result<RoutingResult, CoreError>>,
    /// Aggregated per-stage instrumentation.
    pub stats: EngineStats,
}

/// How a frame fared on the resilient path's verify → retry → degrade
/// ladder ([`Engine::route_batch_resilient`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameOutcome {
    /// The primary attempt verified — the fabric behaved.
    Ok,
    /// The primary attempt failed verification; the reference-router retry
    /// produced a verified result.
    Retried,
    /// Only the degraded re-plan (faulty block avoided) produced a verified
    /// result.
    Degraded,
    /// Every stage of the ladder failed; the frame's result is an error.
    Failed,
}

/// A router that the engine can drive through its verify → retry → degrade
/// ladder ([`Engine::route_batch_resilient`]).
///
/// The three stages mirror the degradation policy of the fault-tolerance
/// subsystem: a fast primary attempt, a retry on the reference (allocating)
/// router — which clears transient upsets — and a final re-plan that avoids
/// the faulty region using the compact-sequence freedom of Lemmas 1–5
/// (rotating the scatter target `s`). Implementations that have no fault
/// mask (e.g. a healthy [`Brsmn`]) return `None` from
/// [`ResilientRouter::route_degraded`].
pub trait ResilientRouter {
    /// The primary (fast-path) attempt.
    fn route_primary(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError>;

    /// The retry attempt after the primary result failed verification.
    fn route_retry(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError>;

    /// The degraded re-plan guided by the verifier's localization; `None`
    /// when the router has no way to steer around the reported region.
    fn route_degraded(
        &self,
        asg: &MulticastAssignment,
        report: &FaultReport,
    ) -> Option<Result<RoutingResult, CoreError>>;
}

/// A healthy network is trivially resilient: the fast path is primary, the
/// reference router is the retry, and there is no fault mask to degrade
/// around. This is the zero-false-positive control of the fault campaign.
impl ResilientRouter for Brsmn {
    fn route_primary(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        self.route(asg)
    }

    fn route_retry(&self, asg: &MulticastAssignment) -> Result<RoutingResult, CoreError> {
        self.route_reference(asg)
    }

    fn route_degraded(
        &self,
        _asg: &MulticastAssignment,
        _report: &FaultReport,
    ) -> Option<Result<RoutingResult, CoreError>> {
        None
    }
}

/// The batched, multi-threaded BRSMN routing engine.
#[derive(Debug, Clone)]
pub struct Engine {
    net: Brsmn,
    cfg: EngineConfig,
    plan_cache: Option<Arc<PlanCache>>,
}

/// Pass-A verdict for one frame of a batched fast-path route
/// ([`Engine::route_batch_fast_batched`]).
enum FrameProbe {
    /// Replay this already-looked-up exact-tier plan.
    ExactHit(Arc<CapturedPlan>),
    /// Replay this canonical-tier hit through the permuted executor.
    CanonHit(CanonicalHit),
    /// An earlier in-batch miss claimed this frame's fingerprint or
    /// relabeling class: route after the SoA chunks land, through the
    /// normal per-frame ladder (it then hits what the chunk inserted — or
    /// re-plans if the chunk failed, byte-identically to scalar routing).
    Deferred,
}

/// What one SoA chunk (or its scalar fallback) produced.
struct ChunkOut {
    /// `(frame index, result)` for every frame of the chunk.
    entries: Vec<(usize, Result<RoutingResult, CoreError>)>,
    timer: StageTimer,
    busy_nanos: u64,
    scratch_bytes: u64,
    /// `[exact_hits, canonical_hits, misses, evictions]`.
    tallies: [u64; 4],
    batch_planned: u64,
}

impl Engine {
    /// An engine over an `n × n` BRSMN with the default (batch) config.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        Engine::with_config(n, EngineConfig::default())
    }

    /// An engine with an explicit [`EngineConfig`]. When
    /// [`EngineConfig::plan_cache`] is nonzero the engine builds its own
    /// cache; use [`Engine::share_plan_cache`] to pool one across engines.
    pub fn with_config(n: usize, cfg: EngineConfig) -> Result<Self, CoreError> {
        let plan_cache = if cfg.plan_cache > 0 {
            Some(Arc::new(PlanCache::new(cfg.plan_cache)))
        } else {
            None
        };
        Ok(Engine {
            net: Brsmn::new(n)?,
            cfg,
            plan_cache,
        })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.net.n()
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The plan cache this engine consults, if any.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.plan_cache.as_ref()
    }

    /// Replaces this engine's plan cache with a shared one (captured plans
    /// are pure functions of the assignment, so sharing across engines —
    /// e.g. the shards of a [`ShardedEngine`] — is always sound and lets one
    /// shard's capture serve another's replay).
    pub fn share_plan_cache(&mut self, cache: Arc<PlanCache>) {
        self.plan_cache = Some(cache);
    }

    /// Routes a batch of frames with the **semantic** message model.
    ///
    /// Results come back in input order and are bit-identical to calling
    /// [`Brsmn::route`] on each frame sequentially. With
    /// [`EngineConfig::use_scratch`] on (the default) and no intra-frame
    /// forking, frames run on the zero-allocation fast path, each worker
    /// reusing its thread-local arena.
    pub fn route_batch(&self, batch: &[MulticastAssignment]) -> BatchOutput {
        if self.cfg.use_scratch && !self.cfg.parallel_halves {
            self.route_batch_fast(batch)
        } else {
            self.route_batch_with(batch, |_n, src, dests| {
                SemanticMsg::new(src, dests.to_vec())
            })
        }
    }

    /// The fast-path batch driver: one thread-local [`RouteScratch`] per
    /// worker, zero heap allocation per frame after warm-up (one `Vec` per
    /// result aside). With a [`PlanCache`] configured, each frame probes
    /// two tiers: the assignment fingerprint first (an exact hit replays
    /// the captured setting planes verbatim — no planner sweeps at all),
    /// then the canonical relabeling class (a canonical hit replays a
    /// class member's plan through the permuted executor). A miss in both
    /// plans fresh while capturing, and inserts the capture into both
    /// tiers for the next occurrence — exact or relabeled.
    ///
    /// Multi-frame batches with [`EngineConfig::batch_plan`] on take the
    /// SoA batched driver instead, which plans all cache-miss frames in
    /// lockstep; single frames and the `--no-batch-plan` escape hatch run
    /// this per-frame loop.
    fn route_batch_fast(&self, batch: &[MulticastAssignment]) -> BatchOutput {
        if self.cfg.batch_plan && batch.len() > 1 {
            return self.route_batch_fast_batched(batch);
        }
        let n = self.net.n();
        let workers = par::effective_workers(self.cfg.workers).min(batch.len().max(1));
        let cache = self.plan_cache.as_deref();

        let wall_start = Instant::now();
        let frames = par::par_map(batch, workers, |_idx, asg| {
            let frame_start = Instant::now();
            let mut timer = StageTimer::new();
            let (result, bytes, tallies) = self.route_frame_cached(asg, &mut timer);
            (
                result,
                timer,
                frame_start.elapsed().as_nanos() as u64,
                bytes,
                tallies,
            )
        });
        let wall_nanos = wall_start.elapsed().as_nanos() as u64;

        let mut stages = StageTimer::new();
        let mut busy_nanos = 0u64;
        let mut scratch_bytes = 0u64;
        let mut results = Vec::with_capacity(frames.len());
        let (mut frames_ok, mut frames_failed) = (0usize, 0usize);
        let mut cache_tallies = [0u64; 4];
        for (result, timer, frame_nanos, bytes, tallies) in frames {
            stages.merge(&timer);
            busy_nanos += frame_nanos;
            scratch_bytes = scratch_bytes.max(bytes);
            for (acc, d) in cache_tallies.iter_mut().zip(tallies) {
                *acc += d;
            }
            match &result {
                Ok(_) => frames_ok += 1,
                Err(_) => frames_failed += 1,
            }
            results.push(result);
        }
        let [plan_exact_hits, plan_canonical_hits, plan_misses, plan_evictions] = cache_tallies;

        BatchOutput {
            results,
            stats: EngineStats {
                n,
                batch: batch.len(),
                workers,
                parallel_halves: false,
                frames_ok,
                frames_failed,
                frames_retried: 0,
                frames_degraded: 0,
                stages,
                wall_nanos,
                busy_nanos,
                fastpath_frames: batch.len() as u64,
                scratch_bytes,
                plan_hits: plan_exact_hits + plan_canonical_hits,
                plan_misses,
                plan_exact_hits,
                plan_canonical_hits,
                plan_evictions,
                plan_cache_bytes: cache.map_or(0, |c| c.footprint_bytes() as u64),
                plan_snapshot_loaded: cache.map_or(0, |c| c.stats().snapshot_loaded),
                simd_lane_width: brsmn_rbn::LANES as u64,
                batch_planned_frames: 0,
                cluster_nodes: 0,
                cluster_messages: 0,
                cluster_messages_dropped: 0,
                cluster_epoch: 0,
            },
        }
    }

    /// Routes one fast-path frame through the full per-frame ladder:
    /// exact-tier replay, then canonical-tier permuted replay, then fresh
    /// planning with capture and two-tier insertion. Returns the result,
    /// the scratch footprint in bytes, and the cache tallies
    /// `[exact_hits, canonical_hits, misses, evictions]`.
    fn route_frame_cached(
        &self,
        asg: &MulticastAssignment,
        timer: &mut StageTimer,
    ) -> (Result<RoutingResult, CoreError>, u64, [u64; 4]) {
        use crate::fastpath::{
            route_assignment_fast_buffered, route_assignment_replay_buffered,
            route_assignment_replay_permuted, with_thread_scratch,
        };
        let n = self.net.n();
        let cache = self.plan_cache.as_deref();
        let (mut exact_hit, mut canon_hit, mut miss, mut evict) = (0u64, 0u64, 0u64, 0u64);
        let (result, bytes) = with_thread_scratch(n, |scratch| {
            let r = match cache {
                None => route_assignment_fast_buffered(
                    n,
                    self.net.wiring(),
                    asg,
                    scratch,
                    None,
                    Some(timer),
                    None,
                ),
                Some(cache) => {
                    let fp = plan_fingerprint(asg);
                    if let Some(plan) = cache.lookup(fp, asg) {
                        exact_hit = 1;
                        route_assignment_replay_buffered(
                            n,
                            self.net.wiring(),
                            asg,
                            &plan,
                            scratch,
                            None,
                            Some(timer),
                        )
                    } else if let Some(hit) =
                        cache.lookup_canonical(&crate::canonical::canonicalize(asg))
                    {
                        canon_hit = 1;
                        route_assignment_replay_permuted(
                            n,
                            self.net.wiring(),
                            asg,
                            &hit.plan,
                            &hit.input_map,
                            &hit.output_map,
                            scratch,
                            Some(timer),
                        )
                    } else {
                        miss = 1;
                        match CapturedPlan::new(n) {
                            Err(e) => Err(e),
                            Ok(mut plan) => {
                                let r = route_assignment_fast_buffered(
                                    n,
                                    self.net.wiring(),
                                    asg,
                                    scratch,
                                    None,
                                    Some(timer),
                                    Some(&mut plan),
                                );
                                if r.is_ok() {
                                    let plan = Arc::new(plan);
                                    if cache.insert(fp, asg, Arc::clone(&plan)) {
                                        evict = 1;
                                    }
                                    // The same capture seeds its whole
                                    // relabeling class.
                                    if cache.insert_canonical(
                                        &crate::canonical::canonicalize(asg),
                                        plan,
                                    ) {
                                        evict = 1;
                                    }
                                }
                                r
                            }
                        }
                    }
                }
            };
            (r, scratch.footprint_bytes() as u64)
        });
        (result, bytes, [exact_hit, canon_hit, miss, evict])
    }

    /// The batched fast-path driver ([`EngineConfig::batch_plan`]): probe
    /// the cache once per frame, group the misses into SoA chunks planned
    /// in lockstep by [`crate::BatchPlanner`], then serve hits by replay
    /// and deferred duplicates through the per-frame ladder. Results,
    /// hit/miss tallies and captured plans are identical to the per-frame
    /// driver's — the passes only reorder *when* each frame runs, never
    /// what it computes:
    ///
    /// * **Pass A** (sequential) classifies each frame: exact hit,
    ///   canonical hit, miss, or *deferred* — an earlier miss in this
    ///   batch already claimed the same fingerprint or relabeling class,
    ///   so probing now would miss but by pass C the chunk's insert serves
    ///   it, exactly like the sequential per-frame driver's later-frame
    ///   hits.
    /// * **Pass B** fans the misses out in chunks of up to
    ///   [`crate::MAX_BATCH_FRAMES`] frames through thread-local
    ///   [`crate::BatchPlanner`] arenas; each chunk success inserts its
    ///   captures into both cache tiers. A chunk that fails re-routes
    ///   every one of its frames through the per-frame ladder so error
    ///   values stay byte-identical to scalar routing.
    /// * **Pass C** replays the pass-A hits and routes the deferred
    ///   frames.
    fn route_batch_fast_batched(&self, batch: &[MulticastAssignment]) -> BatchOutput {
        use crate::batch::with_thread_batch_planner;
        use crate::fastpath::{
            route_assignment_replay_buffered, route_assignment_replay_permuted,
            with_thread_scratch,
        };
        use std::collections::HashSet;

        let n = self.net.n();
        let workers = par::effective_workers(self.cfg.workers).min(batch.len().max(1));
        let cache = self.plan_cache.as_deref();
        let wiring = self.net.wiring();
        let wall_start = Instant::now();

        // Pass A: classify every frame with at most one probe per cache
        // tier, claiming each fingerprint / relabeling class for its first
        // miss so no plan is computed twice within the batch.
        let mut probes: Vec<(usize, FrameProbe)> = Vec::new();
        let mut miss_idx: Vec<usize> = Vec::new();
        match cache {
            None => miss_idx.extend(0..batch.len()),
            Some(cache) => {
                let mut claimed_fp: HashSet<u64> = HashSet::new();
                let mut claimed_class: HashSet<u64> = HashSet::new();
                for (i, asg) in batch.iter().enumerate() {
                    let fp = plan_fingerprint(asg);
                    if claimed_fp.contains(&fp) {
                        probes.push((i, FrameProbe::Deferred));
                        continue;
                    }
                    if let Some(plan) = cache.lookup(fp, asg) {
                        probes.push((i, FrameProbe::ExactHit(plan)));
                        continue;
                    }
                    let canon = crate::canonical::canonicalize(asg);
                    if claimed_class.contains(&canon.fingerprint()) {
                        probes.push((i, FrameProbe::Deferred));
                        continue;
                    }
                    if let Some(hit) = cache.lookup_canonical(&canon) {
                        probes.push((i, FrameProbe::CanonHit(hit)));
                        continue;
                    }
                    claimed_fp.insert(fp);
                    claimed_class.insert(canon.fingerprint());
                    miss_idx.push(i);
                }
            }
        }

        // Pass B: lockstep-plan the misses. Chunks spread across the
        // worker pool while respecting the SoA frame cap.
        let chunk_size = miss_idx
            .len()
            .div_ceil(workers.max(1))
            .clamp(1, crate::MAX_BATCH_FRAMES);
        let chunks: Vec<&[usize]> = miss_idx.chunks(chunk_size).collect();
        let chunk_outs = par::par_map(&chunks, workers, |_ci, chunk| {
            let chunk: &[usize] = chunk;
            let t0 = Instant::now();
            let mut timer = StageTimer::new();
            let planned: Result<(Vec<Result<RoutingResult, CoreError>>, u64, u64), CoreError> =
                with_thread_batch_planner(n, chunk.len(), |bp| {
                    let mut refs: [&MulticastAssignment; crate::MAX_BATCH_FRAMES] =
                        [&batch[0]; crate::MAX_BATCH_FRAMES];
                    for (k, &i) in chunk.iter().enumerate() {
                        refs[k] = &batch[i];
                    }
                    let refs = &refs[..chunk.len()];
                    let mut evictions = 0u64;
                    match cache {
                        None => bp.route_frames(wiring, refs, &mut timer, None)?,
                        Some(cache) => {
                            let mut caps = Vec::with_capacity(chunk.len());
                            for _ in 0..chunk.len() {
                                caps.push(CapturedPlan::new(n)?);
                            }
                            bp.route_frames(wiring, refs, &mut timer, Some(&mut caps))?;
                            for (&i, plan) in chunk.iter().zip(caps) {
                                let asg = &batch[i];
                                let plan = Arc::new(plan);
                                if cache.insert(plan_fingerprint(asg), asg, Arc::clone(&plan)) {
                                    evictions += 1;
                                }
                                // The same capture seeds its whole
                                // relabeling class.
                                if cache
                                    .insert_canonical(&crate::canonical::canonicalize(asg), plan)
                                {
                                    evictions += 1;
                                }
                            }
                        }
                    }
                    Ok((
                        (0..chunk.len()).map(|k| Ok(bp.frame_result(k))).collect(),
                        evictions,
                        bp.footprint_bytes() as u64,
                    ))
                });
            match planned {
                Ok((results, evictions, bytes)) => ChunkOut {
                    entries: chunk.iter().copied().zip(results).collect(),
                    timer,
                    busy_nanos: t0.elapsed().as_nanos() as u64,
                    scratch_bytes: bytes,
                    // Misses are a cache statistic: without a cache there is
                    // nothing to miss (matching the per-frame driver).
                    tallies: [
                        0,
                        0,
                        if cache.is_some() { chunk.len() as u64 } else { 0 },
                        evictions,
                    ],
                    batch_planned: chunk.len() as u64,
                },
                Err(_) => {
                    // All-or-nothing: any frame error reroutes the whole
                    // chunk through the per-frame ladder, so each frame's
                    // result — error values included — is byte-identical
                    // to scalar routing. The partial lockstep timer is
                    // discarded to avoid double-counting.
                    let mut timer = StageTimer::new();
                    let mut entries = Vec::with_capacity(chunk.len());
                    let mut tallies = [0u64; 4];
                    let mut bytes = 0u64;
                    let mut busy = 0u64;
                    for &i in chunk {
                        let f0 = Instant::now();
                        let (result, b, t) = self.route_frame_cached(&batch[i], &mut timer);
                        busy += f0.elapsed().as_nanos() as u64;
                        bytes = bytes.max(b);
                        for (acc, d) in tallies.iter_mut().zip(t) {
                            *acc += d;
                        }
                        entries.push((i, result));
                    }
                    ChunkOut {
                        entries,
                        timer,
                        busy_nanos: busy,
                        scratch_bytes: bytes,
                        tallies,
                        batch_planned: 0,
                    }
                }
            }
        });

        // Pass C: replay the hits; deferred frames re-probe the (now
        // warmed) cache through the normal per-frame ladder.
        let hit_outs = par::par_map(&probes, workers, |_k, (i, probe)| {
            let t0 = Instant::now();
            let mut timer = StageTimer::new();
            let (result, bytes, tallies) = match probe {
                FrameProbe::ExactHit(plan) => with_thread_scratch(n, |scratch| {
                    let r = route_assignment_replay_buffered(
                        n,
                        wiring,
                        &batch[*i],
                        plan,
                        scratch,
                        None,
                        Some(&mut timer),
                    );
                    (r, scratch.footprint_bytes() as u64, [1, 0, 0, 0])
                }),
                FrameProbe::CanonHit(hit) => with_thread_scratch(n, |scratch| {
                    let r = route_assignment_replay_permuted(
                        n,
                        wiring,
                        &batch[*i],
                        &hit.plan,
                        &hit.input_map,
                        &hit.output_map,
                        scratch,
                        Some(&mut timer),
                    );
                    (r, scratch.footprint_bytes() as u64, [0, 1, 0, 0])
                }),
                FrameProbe::Deferred => self.route_frame_cached(&batch[*i], &mut timer),
            };
            (
                *i,
                result,
                timer,
                t0.elapsed().as_nanos() as u64,
                bytes,
                tallies,
            )
        });
        let wall_nanos = wall_start.elapsed().as_nanos() as u64;

        let mut stages = StageTimer::new();
        let mut busy_nanos = 0u64;
        let mut scratch_bytes = 0u64;
        let mut cache_tallies = [0u64; 4];
        let mut batch_planned_frames = 0u64;
        let mut slots: Vec<Option<Result<RoutingResult, CoreError>>> =
            (0..batch.len()).map(|_| None).collect();
        for out in chunk_outs {
            stages.merge(&out.timer);
            busy_nanos += out.busy_nanos;
            scratch_bytes = scratch_bytes.max(out.scratch_bytes);
            for (acc, d) in cache_tallies.iter_mut().zip(out.tallies) {
                *acc += d;
            }
            batch_planned_frames += out.batch_planned;
            for (i, r) in out.entries {
                slots[i] = Some(r);
            }
        }
        for (i, result, timer, nanos, bytes, tallies) in hit_outs {
            stages.merge(&timer);
            busy_nanos += nanos;
            scratch_bytes = scratch_bytes.max(bytes);
            for (acc, d) in cache_tallies.iter_mut().zip(tallies) {
                *acc += d;
            }
            slots[i] = Some(result);
        }
        let results: Vec<Result<RoutingResult, CoreError>> = slots
            .into_iter()
            .map(|s| s.expect("every frame is routed by exactly one pass"))
            .collect();
        let (mut frames_ok, mut frames_failed) = (0usize, 0usize);
        for r in &results {
            match r {
                Ok(_) => frames_ok += 1,
                Err(_) => frames_failed += 1,
            }
        }
        let [plan_exact_hits, plan_canonical_hits, plan_misses, plan_evictions] = cache_tallies;

        BatchOutput {
            results,
            stats: EngineStats {
                n,
                batch: batch.len(),
                workers,
                parallel_halves: false,
                frames_ok,
                frames_failed,
                frames_retried: 0,
                frames_degraded: 0,
                stages,
                wall_nanos,
                busy_nanos,
                fastpath_frames: batch.len() as u64,
                scratch_bytes,
                plan_hits: plan_exact_hits + plan_canonical_hits,
                plan_misses,
                plan_exact_hits,
                plan_canonical_hits,
                plan_evictions,
                plan_cache_bytes: cache.map_or(0, |c| c.footprint_bytes() as u64),
                plan_snapshot_loaded: cache.map_or(0, |c| c.stats().snapshot_loaded),
                simd_lane_width: brsmn_rbn::LANES as u64,
                batch_planned_frames,
                cluster_nodes: 0,
                cluster_messages: 0,
                cluster_messages_dropped: 0,
                cluster_epoch: 0,
            },
        }
    }

    /// Routes a batch with the **self-routing** message model (messages
    /// reduced to `SEQ` tag streams before entering the network).
    pub fn route_batch_self_routing(&self, batch: &[MulticastAssignment]) -> BatchOutput {
        self.route_batch_with(batch, |n, src, dests| {
            SelfRoutedMsg::prepare(n, src, dests)
        })
    }

    /// Routes one frame, returning its result and instrumentation. Uses
    /// intra-network parallelism if the config enables it.
    pub fn route_one(
        &self,
        asg: &MulticastAssignment,
    ) -> (Result<RoutingResult, CoreError>, EngineStats) {
        let out = self.route_batch(std::slice::from_ref(asg));
        let mut results = out.results;
        (results.remove(0), out.stats)
    }

    /// Routes a batch through `router` with post-route verification and the
    /// graceful-degradation ladder, in parallel across the configured
    /// workers.
    ///
    /// Each frame's attempt sequence is: **primary** → verify; on failure
    /// **retry** (reference router) → verify; on failure **degraded**
    /// re-plan (if the router offers one) → verify. A frame that exhausts
    /// the ladder yields [`CoreError::Verification`] carrying the last
    /// [`FaultReport`] (or the routing error of the last attempt). The
    /// outcomes are returned per frame and rolled up into
    /// [`EngineStats::frames_retried`] / [`EngineStats::frames_degraded`] /
    /// [`EngineStats::frames_failed`]; `frames_ok` counts **verified**
    /// frames regardless of which rung delivered them.
    pub fn route_batch_resilient<R>(
        &self,
        batch: &[MulticastAssignment],
        router: &R,
    ) -> (BatchOutput, Vec<FrameOutcome>)
    where
        R: ResilientRouter + Sync,
    {
        let n = self.net.n();
        let workers = par::effective_workers(self.cfg.workers).min(batch.len().max(1));

        let wall_start = Instant::now();
        let frames = par::par_map(batch, workers, |_idx, asg| {
            let frame_start = Instant::now();
            let (result, outcome) = route_resilient_frame(asg, router);
            (result, outcome, frame_start.elapsed().as_nanos() as u64)
        });
        let wall_nanos = wall_start.elapsed().as_nanos() as u64;

        let mut busy_nanos = 0u64;
        let mut results = Vec::with_capacity(frames.len());
        let mut outcomes = Vec::with_capacity(frames.len());
        let (mut frames_ok, mut frames_failed) = (0usize, 0usize);
        let (mut frames_retried, mut frames_degraded) = (0usize, 0usize);
        for (result, outcome, frame_nanos) in frames {
            busy_nanos += frame_nanos;
            match outcome {
                FrameOutcome::Ok => frames_ok += 1,
                FrameOutcome::Retried => {
                    frames_ok += 1;
                    frames_retried += 1;
                }
                FrameOutcome::Degraded => {
                    frames_ok += 1;
                    frames_degraded += 1;
                }
                FrameOutcome::Failed => frames_failed += 1,
            }
            results.push(result);
            outcomes.push(outcome);
        }

        (
            BatchOutput {
                results,
                stats: EngineStats {
                    n,
                    batch: batch.len(),
                    workers,
                    parallel_halves: false,
                    frames_ok,
                    frames_failed,
                    frames_retried,
                    frames_degraded,
                    stages: StageTimer::new(),
                    wall_nanos,
                    busy_nanos,
                    fastpath_frames: 0,
                    scratch_bytes: 0,
                    plan_hits: 0,
                    plan_misses: 0,
                    plan_exact_hits: 0,
                    plan_canonical_hits: 0,
                    plan_evictions: 0,
                    plan_cache_bytes: 0,
                    plan_snapshot_loaded: 0,
                    simd_lane_width: 0,
                    batch_planned_frames: 0,
                    cluster_nodes: 0,
                    cluster_messages: 0,
                    cluster_messages_dropped: 0,
                    cluster_epoch: 0,
                },
            },
            outcomes,
        )
    }

    /// Shared batch driver over any payload preparation function.
    fn route_batch_with<P, F>(&self, batch: &[MulticastAssignment], prepare: F) -> BatchOutput
    where
        P: RoutePayload + Send,
        F: Fn(usize, usize, &[usize]) -> P + Sync,
    {
        let n = self.net.n();
        let workers = par::effective_workers(self.cfg.workers).min(batch.len().max(1));
        let fork_depth = if self.cfg.parallel_halves {
            self.cfg.fork_depth
        } else {
            0
        };

        let wall_start = Instant::now();
        let frames = par::par_map(batch, workers, |_idx, asg| {
            let frame_start = Instant::now();
            let mut timer = StageTimer::new();
            let result = self.route_frame(asg, fork_depth, &mut timer, &prepare);
            (result, timer, frame_start.elapsed().as_nanos() as u64)
        });
        let wall_nanos = wall_start.elapsed().as_nanos() as u64;

        let mut stages = StageTimer::new();
        let mut busy_nanos = 0u64;
        let mut results = Vec::with_capacity(frames.len());
        let (mut frames_ok, mut frames_failed) = (0usize, 0usize);
        for (result, timer, frame_nanos) in frames {
            stages.merge(&timer);
            busy_nanos += frame_nanos;
            match &result {
                Ok(_) => frames_ok += 1,
                Err(_) => frames_failed += 1,
            }
            results.push(result);
        }

        BatchOutput {
            results,
            stats: EngineStats {
                n,
                batch: batch.len(),
                workers,
                parallel_halves: fork_depth > 0,
                frames_ok,
                frames_failed,
                frames_retried: 0,
                frames_degraded: 0,
                stages,
                wall_nanos,
                busy_nanos,
                fastpath_frames: 0,
                scratch_bytes: 0,
                plan_hits: 0,
                plan_misses: 0,
                plan_exact_hits: 0,
                plan_canonical_hits: 0,
                plan_evictions: 0,
                plan_cache_bytes: 0,
                plan_snapshot_loaded: 0,
                simd_lane_width: 0,
                batch_planned_frames: 0,
                cluster_nodes: 0,
                cluster_messages: 0,
                cluster_messages_dropped: 0,
                cluster_epoch: 0,
            },
        }
    }

    /// Routes one frame end to end with instrumentation.
    fn route_frame<P, F>(
        &self,
        asg: &MulticastAssignment,
        fork_depth: usize,
        timer: &mut StageTimer,
        prepare: &F,
    ) -> Result<RoutingResult, CoreError>
    where
        P: RoutePayload + Send,
        F: Fn(usize, usize, &[usize]) -> P + Sync,
    {
        let n = self.net.n();
        assert_eq!(asg.n(), n, "assignment size mismatch");
        let lines: Vec<Line<P>> = (0..n)
            .map(|i| {
                let dests = asg.dests(i);
                if dests.is_empty() {
                    Line::empty()
                } else {
                    Line {
                        tag: Tag::Eps,
                        payload: Some(prepare(n, i, dests)),
                    }
                }
            })
            .collect();
        let out = route_block_timed(lines, 0, 1, fork_depth, timer)?;
        crate::brsmn::extract_result(out)
    }
}

/// `S` independent fabrics routing stripes of one batch concurrently.
///
/// Frame `i` of a batch goes to shard `i mod S` (round-robin striping), the
/// shards route their stripes in parallel (one scoped thread per shard, each
/// shard's [`Engine`] applying its own worker config inside), and the
/// per-frame results are reassembled in input order. Because the shards are
/// fully independent fabrics and striping never reorders frames, the output
/// is **bit-identical** to routing the same batch through a single
/// [`Engine`] — `crates/core/tests/shard_props.rs` pins this down.
///
/// Per-shard [`EngineStats`] are folded with [`EngineStats::merge`];
/// `wall_nanos` is the measured end-to-end time (so
/// [`EngineStats::frames_per_sec`] reflects the sharded throughput), while
/// `workers` sums the shards' worker counts.
///
/// # Example
///
/// ```
/// use brsmn_core::{Engine, MulticastAssignment, ShardedEngine};
///
/// let batch: Vec<MulticastAssignment> = (0..6)
///     .map(|s| {
///         let mut sets = vec![Vec::new(); 8];
///         sets[s % 8] = (0..8).collect();
///         MulticastAssignment::from_sets(8, sets).unwrap()
///     })
///     .collect();
/// let single = Engine::new(8).unwrap().route_batch(&batch);
/// let sharded = ShardedEngine::new(8, 3).unwrap().route_batch(&batch);
/// for (a, b) in single.results.iter().zip(&sharded.results) {
///     assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    shards: Vec<Engine>,
}

impl ShardedEngine {
    /// `shards` independent fabrics of size `n`, each with the default
    /// (batch) engine config.
    pub fn new(n: usize, shards: usize) -> Result<Self, CoreError> {
        ShardedEngine::with_config(n, shards, EngineConfig::default())
    }

    /// `shards` independent fabrics, each running `cfg` internally.
    ///
    /// For a serving deployment the usual shape is `cfg.workers = 1` and
    /// parallelism purely from the shard count; `workers > 1` nests
    /// frame-level pools inside each shard.
    pub fn with_config(n: usize, shards: usize, cfg: EngineConfig) -> Result<Self, CoreError> {
        if shards == 0 {
            return Err(CoreError::Config(
                "ShardedEngine needs at least one shard".to_string(),
            ));
        }
        let mut shards = (0..shards)
            .map(|_| Engine::with_config(n, cfg))
            .collect::<Result<Vec<_>, _>>()?;
        // One cache for the whole fleet: a plan captured by any shard serves
        // replays on every shard (settings are a pure function of the
        // assignment, not of the fabric instance that planned them).
        if cfg.plan_cache > 0 {
            let shared = Arc::new(PlanCache::new(cfg.plan_cache));
            for shard in &mut shards {
                shard.share_plan_cache(Arc::clone(&shared));
            }
        }
        Ok(ShardedEngine { shards })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.shards[0].n()
    }

    /// Number of independent fabrics.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.shards[0].config()
    }

    /// The plan cache shared by every shard, if configured.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.shards[0].plan_cache()
    }

    /// Replaces every shard's plan cache with `cache`, pooling capture and
    /// replay across the fleet. The usual use is warm-starting: load a
    /// [`PlanCacheSnapshot`](crate::plancache::PlanCacheSnapshot) into a
    /// cache before serving and hand it to the engine here.
    pub fn share_plan_cache(&mut self, cache: Arc<PlanCache>) {
        for shard in &mut self.shards {
            shard.share_plan_cache(Arc::clone(&cache));
        }
    }

    /// Routes a batch striped round-robin across the shards; results come
    /// back in input order, bit-identical to a single [`Engine`].
    pub fn route_batch(&self, batch: &[MulticastAssignment]) -> BatchOutput {
        let s = self.shards.len();
        if s == 1 || batch.len() <= 1 {
            return self.shards[0].route_batch(batch);
        }

        let stripes: Vec<Vec<MulticastAssignment>> = (0..s)
            .map(|k| batch.iter().skip(k).step_by(s).cloned().collect())
            .collect();

        let wall_start = Instant::now();
        let shard_outs = par::par_map(&stripes, s, |k, stripe| {
            self.shards[k].route_batch(stripe)
        });
        let wall_nanos = wall_start.elapsed().as_nanos() as u64;

        let mut results: Vec<Option<Result<RoutingResult, CoreError>>> =
            (0..batch.len()).map(|_| None).collect();
        let mut stats = EngineStats::empty(self.n());
        for (k, out) in shard_outs.into_iter().enumerate() {
            for (j, r) in out.results.into_iter().enumerate() {
                results[k + j * s] = Some(r);
            }
            stats.merge(&out.stats);
        }
        stats.wall_nanos = wall_nanos;

        BatchOutput {
            results: results
                .into_iter()
                .map(|r| r.expect("striping covers every frame exactly once"))
                .collect(),
            stats,
        }
    }
}

/// Drives one frame through the verify → retry → degrade ladder.
fn route_resilient_frame<R: ResilientRouter>(
    asg: &MulticastAssignment,
    router: &R,
) -> (Result<RoutingResult, CoreError>, FrameOutcome) {
    // Checks one attempt: Ok(result) if it verified, Err(the error to carry
    // forward) otherwise.
    let check = |attempt: Result<RoutingResult, CoreError>| match attempt {
        Ok(r) => match verify_routing(asg, &r) {
            Ok(()) => Ok(r),
            Err(report) => Err(CoreError::Verification(report)),
        },
        Err(e) => Err(e),
    };

    let primary_failure = match check(router.route_primary(asg)) {
        Ok(r) => return (Ok(r), FrameOutcome::Ok),
        Err(e) => e,
    };

    let retry_failure = match check(router.route_retry(asg)) {
        Ok(r) => return (Ok(r), FrameOutcome::Retried),
        Err(e) => e,
    };

    // Degrading needs the verifier's localization. A routing error (e.g. a
    // fault-induced planner failure) localizes nothing, so use whichever
    // attempt produced a report, preferring the fresher retry.
    let report = [&retry_failure, &primary_failure]
        .into_iter()
        .find_map(|e| match e {
            CoreError::Verification(r) => Some(r.clone()),
            _ => None,
        });
    if let Some(report) = report {
        if let Some(degraded) = router.route_degraded(asg, &report) {
            match check(degraded) {
                Ok(r) => return (Ok(r), FrameOutcome::Degraded),
                Err(e) => return (Err(e), FrameOutcome::Failed),
            }
        }
    }
    (Err(retry_failure), FrameOutcome::Failed)
}

/// Instrumented (and optionally halves-parallel) version of the recursive
/// router in [`crate::brsmn`]. Produces exactly the same output lines: the
/// two halves compute disjoint output ranges `[lo, lo+size/2)` and
/// `[lo+size/2, lo+size)` and are concatenated in order.
fn route_block_timed<P: RoutePayload + Send>(
    lines: Vec<Line<P>>,
    lo: usize,
    level: usize,
    fork_depth: usize,
    timer: &mut StageTimer,
) -> Result<Vec<Line<P>>, CoreError> {
    let size = lines.len();
    if size == 2 {
        let t0 = Instant::now();
        let out = final_switch(lines, lo, &mut None)?;
        timer.record_final(t0.elapsed());
        return Ok(out);
    }

    let t0 = Instant::now();
    let bsn = Bsn::new(size)?;
    let (mut out, _trace) = bsn.route_reference(lines, lo)?;
    for line in out.iter_mut() {
        if line.tag != Tag::Eps {
            let branch = line.tag;
            let payload = line.payload.take().expect("tagged line has a payload");
            line.payload = Some(payload.descend(branch, lo, size));
        }
    }
    timer.record_bsn(level, size, t0.elapsed());

    let lower = out.split_off(size / 2);
    if fork_depth > 0 && size >= MIN_FORK_BLOCK {
        let (up, (down, lower_timer)) = par::join(
            || route_block_timed(out, lo, level + 1, fork_depth - 1, timer),
            || {
                let mut lt = StageTimer::new();
                let r = route_block_timed(lower, lo + size / 2, level + 1, fork_depth - 1, &mut lt);
                (r, lt)
            },
        );
        timer.merge(&lower_timer);
        let mut up = up?;
        up.extend(down?);
        Ok(up)
    } else {
        let mut up = route_block_timed(out, lo, level + 1, 0, timer)?;
        let down = route_block_timed(lower, lo + size / 2, level + 1, 0, timer)?;
        up.extend(down);
        Ok(up)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_assignment() -> MulticastAssignment {
        MulticastAssignment::from_sets(
            8,
            vec![
                vec![0, 1],
                vec![],
                vec![3, 4, 7],
                vec![2],
                vec![],
                vec![],
                vec![],
                vec![5, 6],
            ],
        )
        .unwrap()
    }

    #[test]
    fn engine_matches_sequential_router_on_paper_example() {
        let net = Brsmn::new(8).unwrap();
        let expect = net.route(&paper_assignment()).unwrap();
        for cfg in [
            EngineConfig::sequential(),
            EngineConfig::batch(4),
            EngineConfig::single_frame(3),
        ] {
            let engine = Engine::with_config(8, cfg).unwrap();
            let (result, stats) = engine.route_one(&paper_assignment());
            assert_eq!(result.unwrap(), expect);
            assert_eq!(stats.frames_ok, 1);
            assert_eq!(stats.frames_failed, 0);
        }
    }

    #[test]
    fn batch_results_keep_input_order() {
        let n = 16;
        let batch: Vec<MulticastAssignment> = (0..40)
            .map(|f| {
                let mut sets = vec![Vec::new(); n];
                sets[f % n] = vec![(f * 7) % n, (f * 7 + 1) % n]
                    .into_iter()
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .collect();
                MulticastAssignment::from_sets(n, sets).unwrap()
            })
            .collect();
        let net = Brsmn::new(n).unwrap();
        let engine = Engine::with_config(n, EngineConfig::batch(4)).unwrap();
        let out = engine.route_batch(&batch);
        assert_eq!(out.results.len(), batch.len());
        for (asg, result) in batch.iter().zip(&out.results) {
            assert_eq!(result.as_ref().unwrap(), &net.route(asg).unwrap());
        }
        assert_eq!(out.stats.frames_ok, batch.len());
    }

    #[test]
    fn self_routing_batch_agrees_with_semantic() {
        let engine = Engine::with_config(8, EngineConfig::batch(2)).unwrap();
        let batch = vec![paper_assignment(); 8];
        let sem = engine.route_batch(&batch);
        let slf = engine.route_batch_self_routing(&batch);
        for (a, b) in sem.results.iter().zip(&slf.results) {
            assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
    }

    #[test]
    fn stats_count_stages_exactly() {
        // One 8×8 frame: one 8-BSN, two 4-BSNs, four final switches.
        let engine = Engine::with_config(8, EngineConfig::sequential()).unwrap();
        let (result, stats) = engine.route_one(&paper_assignment());
        result.unwrap();
        assert_eq!(stats.stages.levels.len(), 2);
        assert_eq!(stats.stages.levels[0].blocks, 1);
        assert_eq!(stats.stages.levels[1].blocks, 2);
        assert_eq!(stats.stages.final_switches, 4);
        // Settings: 8·3 (level 1) + 2·(4·2) (level 2) + 4 (final) = 44.
        assert_eq!(stats.stages.switch_settings, 44);
        assert_eq!(stats.stages.sweep_passes, 3 * SWEEPS_PER_BSN);
        assert_eq!(stats.batch, 1);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn stats_serialize_to_json_and_back() {
        let engine = Engine::with_config(8, EngineConfig::sequential()).unwrap();
        let (_, stats) = engine.route_one(&paper_assignment());
        let json = serde_json::to_string(&stats).unwrap();
        let back: EngineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
        assert!(json.contains("switch_settings"));
    }

    #[test]
    fn frame_errors_are_reported_in_place() {
        // Frame 1 of 3 is fine; an engine over n=8 rejects an n=4 frame via
        // the assert, so instead build a frame that fails in routing: a
        // hand-built conflict is impossible from MulticastAssignment, so
        // check the all-ok path plus per-frame counters only.
        let engine = Engine::with_config(8, EngineConfig::batch(2)).unwrap();
        let out = engine.route_batch(&vec![paper_assignment(); 3]);
        assert_eq!(out.stats.frames_ok, 3);
        assert_eq!(out.stats.frames_failed, 0);
    }

    #[test]
    fn no_scratch_config_matches_fast_path() {
        let n = 16;
        let batch: Vec<MulticastAssignment> = (0..12)
            .map(|f| {
                let mut sets = vec![Vec::new(); n];
                sets[f % n] = (0..n).step_by(f % 3 + 1).collect();
                MulticastAssignment::from_sets(n, sets).unwrap()
            })
            .collect();
        let fast = Engine::with_config(n, EngineConfig::sequential()).unwrap();
        let slow =
            Engine::with_config(n, EngineConfig::sequential().without_scratch()).unwrap();
        let a = fast.route_batch(&batch);
        let b = slow.route_batch(&batch);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
        }
        // The two drivers record identical work counters.
        assert_eq!(
            a.stats.stages.switch_settings,
            b.stats.stages.switch_settings
        );
        assert_eq!(a.stats.stages.sweep_passes, b.stats.stages.sweep_passes);
        assert_eq!(a.stats.fastpath_frames, batch.len() as u64);
        assert!(a.stats.scratch_bytes > 0);
        assert_eq!(b.stats.fastpath_frames, 0);
        assert_eq!(b.stats.scratch_bytes, 0);
    }

    #[test]
    fn plan_cache_hits_are_bit_identical_and_counted() {
        let n = 16;
        let distinct: Vec<MulticastAssignment> = (0..4)
            .map(|f| {
                let mut sets = vec![Vec::new(); n];
                sets[f] = (0..n).step_by(f + 1).collect();
                MulticastAssignment::from_sets(n, sets).unwrap()
            })
            .collect();
        // 4 distinct frames, each repeated 5 times.
        let batch: Vec<MulticastAssignment> = (0..20).map(|i| distinct[i % 4].clone()).collect();

        let plain = Engine::with_config(n, EngineConfig::sequential()).unwrap();
        let cached =
            Engine::with_config(n, EngineConfig::sequential().with_plan_cache(64)).unwrap();
        let a = plain.route_batch(&batch);
        let b = cached.route_batch(&batch);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
        }
        assert_eq!(b.stats.plan_misses, 4);
        assert_eq!(b.stats.plan_hits, 16);
        assert_eq!(b.stats.plan_evictions, 0);
        assert!(b.stats.plan_cache_bytes > 0);
        assert_eq!(a.stats.plan_hits, 0);
        assert_eq!(a.stats.plan_misses, 0);
        // Replay applies the same settings but runs no planner sweeps.
        assert_eq!(
            a.stats.stages.switch_settings,
            b.stats.stages.switch_settings
        );
        assert!(b.stats.stages.sweep_passes < a.stats.stages.sweep_passes);
        // A second pass over the same batch is all hits.
        let c = cached.route_batch(&batch);
        assert_eq!(c.stats.plan_hits, 20);
        assert_eq!(c.stats.plan_misses, 0);
    }

    #[test]
    fn plan_cache_capacity_pressure_evicts_and_stays_correct() {
        let n = 16;
        // Distinct fanouts put every frame in its own relabeling class, so
        // neither the exact nor the canonical tier can absorb the churn.
        let distinct: Vec<MulticastAssignment> = (0..6)
            .map(|f| {
                let mut sets = vec![Vec::new(); n];
                sets[f] = (0..=f).map(|k| (f * 3 + k) % n).collect();
                MulticastAssignment::from_sets(n, sets).unwrap()
            })
            .collect();
        // Capacity 2 < 6 distinct frames, cycled twice: every round-trip
        // re-misses what was evicted, and results stay correct throughout.
        let cached =
            Engine::with_config(n, EngineConfig::sequential().with_plan_cache(2)).unwrap();
        let plain = Engine::with_config(n, EngineConfig::sequential()).unwrap();
        let batch: Vec<MulticastAssignment> = (0..12).map(|i| distinct[i % 6].clone()).collect();
        let a = plain.route_batch(&batch);
        let b = cached.route_batch(&batch);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
        }
        assert!(b.stats.plan_evictions > 0);
        assert_eq!(b.stats.plan_hits + b.stats.plan_misses, 12);
        assert!(cached.plan_cache().unwrap().len() <= 2);
    }

    #[test]
    fn batch_plan_matches_per_frame_driver_and_counts() {
        let n = 16;
        // 4 distinct shapes cycled over 20 frames: duplicates exercise the
        // claim-and-defer pass, distinct frames the SoA chunks.
        let distinct: Vec<MulticastAssignment> = (0..4)
            .map(|f| {
                let mut sets = vec![Vec::new(); n];
                sets[f] = (0..n).step_by(f + 1).collect();
                MulticastAssignment::from_sets(n, sets).unwrap()
            })
            .collect();
        let batch: Vec<MulticastAssignment> = (0..20).map(|i| distinct[i % 4].clone()).collect();

        let batched = Engine::with_config(n, EngineConfig::sequential()).unwrap();
        let per_frame =
            Engine::with_config(n, EngineConfig::sequential().without_batch_plan()).unwrap();
        let a = batched.route_batch(&batch);
        let b = per_frame.route_batch(&batch);
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
        }
        // Same work, different schedule: identical stage counters either way.
        assert_eq!(
            a.stats.stages.switch_settings,
            b.stats.stages.switch_settings
        );
        assert_eq!(a.stats.stages.sweep_passes, b.stats.stages.sweep_passes);
        // Without a cache every frame of the batch plans in an SoA chunk.
        assert_eq!(a.stats.batch_planned_frames, 20);
        assert_eq!(b.stats.batch_planned_frames, 0);
        assert_eq!(a.stats.simd_lane_width, brsmn_rbn::LANES as u64);
        assert_eq!(b.stats.simd_lane_width, brsmn_rbn::LANES as u64);
        // The reference path reports no lane width at all.
        let reference =
            Engine::with_config(n, EngineConfig::sequential().without_scratch()).unwrap();
        let c = reference.route_batch(&batch);
        assert_eq!(c.stats.simd_lane_width, 0);
        assert_eq!(c.stats.batch_planned_frames, 0);

        // With a cache, only the misses are batch-planned — hits replay.
        let cached =
            Engine::with_config(n, EngineConfig::sequential().with_plan_cache(64)).unwrap();
        let cold = cached.route_batch(&batch);
        assert_eq!(cold.stats.plan_misses, 4);
        assert_eq!(cold.stats.batch_planned_frames, 4);
        let warm = cached.route_batch(&batch);
        assert_eq!(warm.stats.plan_hits, 20);
        assert_eq!(warm.stats.batch_planned_frames, 0);
    }

    #[test]
    fn sharded_engine_shares_one_plan_cache() {
        let n = 16;
        let mut sets = vec![Vec::new(); n];
        sets[3] = (0..n).collect();
        let asg = MulticastAssignment::from_sets(n, sets).unwrap();
        let batch = vec![asg; 16];
        let sharded = ShardedEngine::with_config(
            n,
            4,
            EngineConfig::sequential().with_plan_cache(32),
        )
        .unwrap();
        let out = sharded.route_batch(&batch);
        assert_eq!(out.stats.frames_ok, 16);
        // One distinct assignment: at most one capture per shard can race,
        // but the shared cache holds exactly one resident plan and at least
        // the second pass is all hits.
        assert_eq!(sharded.plan_cache().unwrap().len(), 1);
        let again = sharded.route_batch(&batch);
        assert_eq!(again.stats.plan_hits, 16);
        assert_eq!(again.stats.plan_misses, 0);
    }

    #[test]
    fn parallel_halves_match_sequential_at_n64() {
        let n = 64;
        let mut sets = vec![Vec::new(); n];
        sets[0] = (0..n).collect(); // full broadcast exercises every split
        sets[1] = vec![]; // idle
        let asg = MulticastAssignment::from_sets(n, sets).unwrap();
        let seq = Engine::with_config(n, EngineConfig::sequential()).unwrap();
        let par = Engine::with_config(n, EngineConfig::single_frame(4)).unwrap();
        let (a, _) = seq.route_one(&asg);
        let (b, _) = par.route_one(&asg);
        assert_eq!(a.unwrap(), b.unwrap());
    }
}
