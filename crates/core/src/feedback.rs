//! The feedback implementation of the BRSMN (Section 7.3, Fig. 13).
//!
//! All functional components of the BRSMN are recursively constructed
//! reverse banyan networks, so one **physical** `n × n` RBN suffices: its
//! outputs feed back to the inputs with the same addresses, and each pass
//! re-programs (part of) the switch array:
//!
//! * level 1: pass 1 = the full RBN as the scatter network, pass 2 = the full
//!   RBN as the quasisorting network;
//! * level `i > 1`: the `2^{i−1}` sub-RBNs of size `n/2^{i−1}` — which are
//!   physically the *first* `m − i + 1` stages of the same array — serve as
//!   the scatter / quasisorting networks of the level-`i` BSNs, two more
//!   passes;
//! * final level: blocks of size 2 are realized by the stage-0 switches in a
//!   single last pass.
//!
//! Hardware drops from `Θ(n log² n)` gates to `Θ(n log n)` while the routing
//! still takes `2(m−1)+1 = O(log n)` passes of `O(log n)` stages each — the
//! same `O(log² n)` time as the unfolded network.

use crate::assignment::{MulticastAssignment, RoutingResult};
use crate::brsmn::{extract_result, final_switch};
use crate::error::CoreError;
use crate::metrics;
use crate::payload::{RoutePayload, SelfRoutedMsg, SemanticMsg};
use brsmn_rbn::{plan_quasisort, plan_scatter, RbnSettings};
use brsmn_switch::tag::TagCounts;
use brsmn_switch::{Line, Tag};
use brsmn_topology::{check_size, log2_exact};
use serde::{Deserialize, Serialize};

/// Execution statistics of one feedback-mode routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeedbackStats {
    /// Passes made through the physical RBN (`2(m−1) + 1`).
    pub passes: u64,
    /// Switches in the physical RBN (`(n/2)·m` — the hardware cost driver).
    pub physical_switches: u64,
    /// Total switch-stage traversals experienced (each pass crosses all `m`
    /// stages of the array; unused trailing stages sit at parallel).
    pub stage_traversals: u64,
    /// Individual switch-setting writes performed across all passes.
    pub reprogrammed_switches: u64,
}

/// The feedback implementation: one physical RBN realizing a whole BRSMN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeedbackBrsmn {
    n: usize,
    m: usize,
}

impl FeedbackBrsmn {
    /// Creates a feedback network of size `n = 2^m`.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        check_size(n)?;
        Ok(FeedbackBrsmn {
            n,
            m: log2_exact(n) as usize,
        })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Routes `asg` with destination-set payloads (semantic engine).
    pub fn route(
        &self,
        asg: &MulticastAssignment,
    ) -> Result<(RoutingResult, FeedbackStats), CoreError> {
        assert_eq!(asg.n(), self.n);
        let lines: Vec<Line<SemanticMsg>> = (0..self.n)
            .map(|i| {
                let dests = asg.dests(i);
                if dests.is_empty() {
                    Line::empty()
                } else {
                    Line {
                        tag: Tag::Eps,
                        payload: Some(SemanticMsg::new(i, dests.to_vec())),
                    }
                }
            })
            .collect();
        let (out, stats) = self.route_lines(lines)?;
        Ok((extract_result(out)?, stats))
    }

    /// Routes `asg` with `SEQ` tag-stream payloads (self-routing engine).
    pub fn route_self_routing(
        &self,
        asg: &MulticastAssignment,
    ) -> Result<(RoutingResult, FeedbackStats), CoreError> {
        assert_eq!(asg.n(), self.n);
        let lines: Vec<Line<SelfRoutedMsg>> = (0..self.n)
            .map(|i| {
                let dests = asg.dests(i);
                if dests.is_empty() {
                    Line::empty()
                } else {
                    Line {
                        tag: Tag::Eps,
                        payload: Some(SelfRoutedMsg::prepare(self.n, i, dests)),
                    }
                }
            })
            .collect();
        let (out, stats) = self.route_lines(lines)?;
        Ok((extract_result(out)?, stats))
    }

    /// The multi-pass engine over pre-built lines.
    pub fn route_lines<P: RoutePayload>(
        &self,
        mut lines: Vec<Line<P>>,
    ) -> Result<(Vec<Line<P>>, FeedbackStats), CoreError> {
        let n = self.n;
        let m = self.m;
        let mut physical = RbnSettings::identity(n);
        let mut stats = FeedbackStats {
            passes: 0,
            physical_switches: metrics::feedback_switches(n),
            stage_traversals: 0,
            reprogrammed_switches: 0,
        };

        for level in 1..m {
            let bs = n >> (level - 1);

            // ---- Scatter pass -------------------------------------------
            physical.reset_parallel();
            for base in (0..n).step_by(bs) {
                // Tag every line of the block from its payload.
                for line in lines[base..base + bs].iter_mut() {
                    line.tag = match &line.payload {
                        Some(p) => p.entry_tag(base, bs),
                        None => Tag::Eps,
                    };
                }
                let tags: Vec<Tag> = lines[base..base + bs].iter().map(|l| l.tag).collect();
                let counts = TagCounts::of(&tags);
                if !counts.satisfies_bsn_input_constraints() {
                    return Err(CoreError::HalfCapacityExceeded {
                        n: bs,
                        n0: counts.n0,
                        n1: counts.n1,
                        na: counts.na,
                    });
                }
                let plan = plan_scatter(&tags, 0);
                physical.program_subnetwork(base, &plan.settings);
                stats.reprogrammed_switches += (bs as u64 / 2) * log2_exact(bs) as u64;
            }
            for base in (0..n).step_by(bs) {
                let mut split = |p: P| p.split(base, bs);
                physical.run_block(&mut lines, base, bs, &mut split)?;
            }
            stats.passes += 1;
            stats.stage_traversals += m as u64;

            // ---- Quasisort pass -----------------------------------------
            physical.reset_parallel();
            for base in (0..n).step_by(bs) {
                let tags: Vec<Tag> = lines[base..base + bs].iter().map(|l| l.tag).collect();
                let (_, sort) = plan_quasisort(&tags)?;
                physical.program_subnetwork(base, &sort.settings);
                stats.reprogrammed_switches += (bs as u64 / 2) * log2_exact(bs) as u64;
            }
            for base in (0..n).step_by(bs) {
                let mut split = |p: P| p.split(base, bs);
                physical.run_block(&mut lines, base, bs, &mut split)?;
            }
            stats.passes += 1;
            stats.stage_traversals += m as u64;

            // ---- Descend into halves ------------------------------------
            for (pos, line) in lines.iter_mut().enumerate() {
                if line.tag != Tag::Eps {
                    let base = pos / bs * bs;
                    let branch = line.tag;
                    let payload = line.payload.take().expect("tagged line has a payload");
                    line.payload = Some(payload.descend(branch, base, bs));
                }
            }
        }

        // ---- Final pass: stage-0 switches realize the last bit ----------
        let mut out = Vec::with_capacity(n);
        for base in (0..n).step_by(2) {
            let pair = vec![
                std::mem::replace(&mut lines[base], Line::empty()),
                std::mem::replace(&mut lines[base + 1], Line::empty()),
            ];
            out.extend(final_switch(pair, base, &mut None)?);
        }
        stats.passes += 1;
        stats.stage_traversals += m as u64;
        stats.reprogrammed_switches += n as u64 / 2;

        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brsmn::Brsmn;

    fn paper_assignment() -> MulticastAssignment {
        MulticastAssignment::from_sets(
            8,
            vec![
                vec![0, 1],
                vec![],
                vec![3, 4, 7],
                vec![2],
                vec![],
                vec![],
                vec![],
                vec![5, 6],
            ],
        )
        .unwrap()
    }

    #[test]
    fn feedback_realizes_paper_example() {
        let net = FeedbackBrsmn::new(8).unwrap();
        let (result, stats) = net.route(&paper_assignment()).unwrap();
        assert!(result.realizes(&paper_assignment()));
        assert_eq!(stats.passes, 5); // 2·(3−1) + 1
        assert_eq!(stats.physical_switches, 12); // (8/2)·3
    }

    #[test]
    fn feedback_agrees_with_unfolded_network() {
        let asg = paper_assignment();
        let unfolded = Brsmn::new(8).unwrap().route(&asg).unwrap();
        let (fed, _) = FeedbackBrsmn::new(8).unwrap().route(&asg).unwrap();
        assert_eq!(unfolded, fed);
    }

    #[test]
    fn feedback_self_routing_engine() {
        let asg = paper_assignment();
        let (r, _) = FeedbackBrsmn::new(8)
            .unwrap()
            .route_self_routing(&asg)
            .unwrap();
        assert!(r.realizes(&asg));
    }

    #[test]
    fn feedback_n2() {
        let asg = MulticastAssignment::from_sets(2, vec![vec![0, 1], vec![]]).unwrap();
        let (r, stats) = FeedbackBrsmn::new(2).unwrap().route(&asg).unwrap();
        assert!(r.realizes(&asg));
        assert_eq!(stats.passes, 1);
    }

    #[test]
    fn stats_match_metrics_formulas() {
        for n in [4usize, 8, 16, 64] {
            let asg = MulticastAssignment::empty(n).unwrap();
            let (_, stats) = FeedbackBrsmn::new(n).unwrap().route(&asg).unwrap();
            assert_eq!(stats.passes, metrics::feedback_passes(n));
            assert_eq!(
                stats.stage_traversals,
                metrics::feedback_depth_traversed(n)
            );
            assert_eq!(stats.physical_switches, metrics::feedback_switches(n));
        }
    }

    #[test]
    fn broadcast_through_feedback() {
        let n = 16;
        let mut sets = vec![Vec::new(); n];
        sets[9] = (0..n).collect();
        let asg = MulticastAssignment::from_sets(n, sets).unwrap();
        let (r, _) = FeedbackBrsmn::new(n).unwrap().route(&asg).unwrap();
        assert!(r.realizes(&asg));
    }
}
