//! The binary splitting network (BSN) — Section 3 of the paper.
//!
//! An `n × n` BSN transforms its input tags so that at the outputs all `α`s
//! are eliminated, all `0`s occupy the upper half and all `1`s the lower half
//! (`ε`s fill the remainder). It is built by cascading two reverse banyan
//! networks: a *scatter network* (splits every `α` into a `0` and a `1`,
//! Theorem 2) and a *quasisorting network* (routes `0`s up and `1`s down,
//! Section 5.2). Both are planned by the distributed algorithms of
//! `brsmn-rbn`.

use crate::error::CoreError;
use crate::payload::RoutePayload;
use brsmn_rbn::bitplan::SweepScratch;
use brsmn_rbn::{plan_quasisort, plan_scatter, RbnSettings, RbnWiring};
use brsmn_switch::tag::TagCounts;
use brsmn_switch::{Line, Tag};
use brsmn_topology::check_size;
use serde::{Deserialize, Serialize};

/// Snapshot of a BSN traversal (for traces / Fig. 4b reproduction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BsnTrace {
    /// Tags on the BSN inputs.
    pub input_tags: Vec<Tag>,
    /// Tags between the scatter and quasisorting networks.
    pub after_scatter: Vec<Tag>,
    /// Tags on the BSN outputs.
    pub output_tags: Vec<Tag>,
}

/// An `n × n` binary splitting network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bsn {
    n: usize,
}

impl Bsn {
    /// Creates a BSN of size `n = 2^m`.
    pub fn new(n: usize) -> Result<Self, CoreError> {
        check_size(n)?;
        Ok(Bsn { n })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of 2×2 switches: two RBNs of `(n/2)·log n` each.
    pub fn switch_count(&self) -> usize {
        2 * brsmn_topology::stage::rbn_switch_count(self.n)
    }

    /// Routes one load of lines through the BSN. `lo` is the absolute output
    /// address of this BSN's first output (the BSN at level `i`, block `b`
    /// of a BRSMN spans outputs `[lo, lo + n)`).
    ///
    /// On return: upper-half lines carry tags in `{0, ε}`, lower-half lines
    /// in `{1, ε}`; `α` payloads have been split via
    /// [`RoutePayload::split`]; **no** [`RoutePayload::descend`] has happened
    /// yet (the BRSMN engine descends when handing lines to the next level).
    ///
    /// Thin wrapper over [`Bsn::route_into`] that allocates fresh planner
    /// scratch per call; the engines thread a reused
    /// [`RouteScratch`](crate::fastpath::RouteScratch) instead.
    pub fn route<P: RoutePayload>(
        &self,
        mut lines: Vec<Line<P>>,
        lo: usize,
    ) -> Result<(Vec<Line<P>>, BsnTrace), CoreError> {
        let mut sweep = SweepScratch::new();
        let mut settings = RbnSettings::identity(self.n);
        let wiring = RbnWiring::new(self.n);
        let mut trace = BsnTrace {
            input_tags: Vec::new(),
            after_scatter: Vec::new(),
            output_tags: Vec::new(),
        };
        self.route_into(
            &mut lines,
            0,
            lo,
            &mut sweep,
            &mut settings,
            &wiring,
            Some(&mut trace),
        )?;
        Ok((lines, trace))
    }

    /// Routes the block of lines `[base, base + n)` in place, planning both
    /// sweeps with the caller's packed scratch and writing settings into the
    /// caller's table at block offset `base` — no heap allocation beyond
    /// whatever [`RoutePayload::split`] itself performs.
    ///
    /// `base` addresses the block inside `lines`/`settings`/`wiring`; `lo` is
    /// the absolute output address of the block's first output (they coincide
    /// inside a BRSMN). When `trace` is provided, its vectors are refilled
    /// with the three tag snapshots.
    #[allow(clippy::too_many_arguments)]
    pub fn route_into<P: RoutePayload>(
        &self,
        lines: &mut [Line<P>],
        base: usize,
        lo: usize,
        sweep: &mut SweepScratch,
        settings: &mut RbnSettings,
        wiring: &RbnWiring,
        mut trace: Option<&mut BsnTrace>,
    ) -> Result<(), CoreError> {
        let n = self.n;
        for line in lines[base..base + n].iter_mut() {
            line.tag = match &line.payload {
                Some(p) => p.entry_tag(lo, n),
                None => Tag::Eps,
            };
        }
        sweep.set_tags(n, |i| lines[base + i].tag);

        // Eq. (2): a realizable load never requests more than n/2 outputs
        // per half.
        let counts = sweep.counts();
        if !counts.satisfies_bsn_input_constraints() {
            return Err(CoreError::HalfCapacityExceeded {
                n,
                n0: counts.n0,
                n1: counts.n1,
                na: counts.na,
            });
        }
        if let Some(t) = trace.as_deref_mut() {
            t.input_tags.clear();
            t.input_tags.extend(lines[base..base + n].iter().map(|l| l.tag));
        }

        // Scatter network: eliminate αs (Theorem 2; nα ≤ nε by Eq. 3).
        let mut split = |p: P| p.split(lo, n);
        sweep.plan_scatter(0, base, settings);
        settings.run_block_wired(lines, base, n, wiring, &mut split)?;
        if let Some(t) = trace.as_deref_mut() {
            t.after_scatter.clear();
            t.after_scatter
                .extend(lines[base..base + n].iter().map(|l| l.tag));
        }

        // Quasisorting network: ε-divide then bit-sort (only unicast
        // settings, so the splitter is never invoked).
        sweep.set_tags(n, |i| lines[base + i].tag);
        sweep.plan_quasisort(base, settings)?;
        settings.run_block_wired(lines, base, n, wiring, &mut split)?;

        // Eq. (4) postconditions, cheap enough to keep on in release builds.
        for (pos, line) in lines[base..base + n].iter().enumerate() {
            let t = line.tag;
            let ok = if pos < n / 2 {
                t != Tag::One && t != Tag::Alpha
            } else {
                t != Tag::Zero && t != Tag::Alpha
            };
            if !ok {
                return Err(CoreError::Internal(format!(
                    "BSN postcondition violated: tag {t} at output {pos} of {n}"
                )));
            }
        }
        if let Some(t) = trace {
            t.output_tags.clear();
            t.output_tags
                .extend(lines[base..base + n].iter().map(|l| l.tag));
        }
        Ok(())
    }

    /// The PR-1 array-planner implementation, kept verbatim as the oracle the
    /// equivalence tests (and the engine's `--no-scratch` escape hatch)
    /// compare against.
    pub fn route_reference<P: RoutePayload>(
        &self,
        mut lines: Vec<Line<P>>,
        lo: usize,
    ) -> Result<(Vec<Line<P>>, BsnTrace), CoreError> {
        assert_eq!(lines.len(), self.n);

        // Tag each line from its payload (the self-routing engine reads the
        // head of the SEQ stream here; the semantic engine inspects the
        // destination set).
        for line in lines.iter_mut() {
            line.tag = match &line.payload {
                Some(p) => p.entry_tag(lo, self.n),
                None => Tag::Eps,
            };
        }
        let input_tags: Vec<Tag> = lines.iter().map(|l| l.tag).collect();

        // Eq. (2): a realizable load never requests more than n/2 outputs
        // per half.
        let counts = TagCounts::of(&input_tags);
        if !counts.satisfies_bsn_input_constraints() {
            return Err(CoreError::HalfCapacityExceeded {
                n: self.n,
                n0: counts.n0,
                n1: counts.n1,
                na: counts.na,
            });
        }

        // Scatter network: eliminate αs (Theorem 2; nα ≤ nε by Eq. 3).
        let scatter = plan_scatter(&input_tags, 0);
        let mut split = |p: P| p.split(lo, self.n);
        let mid = scatter.settings.run(lines, &mut split)?;
        let after_scatter: Vec<Tag> = mid.iter().map(|l| l.tag).collect();

        // Quasisorting network: ε-divide then bit-sort (only unicast
        // settings, so the splitter is never invoked).
        let (_, sort) = plan_quasisort(&after_scatter)?;
        let out = sort.settings.run(mid, &mut split)?;
        let output_tags: Vec<Tag> = out.iter().map(|l| l.tag).collect();

        // Eq. (4) postconditions, cheap enough to keep on in release builds.
        debug_assert_eq!(
            output_tags.iter().filter(|&&t| t == Tag::Zero).count(),
            counts.n0 + counts.na
        );
        debug_assert_eq!(
            output_tags.iter().filter(|&&t| t == Tag::One).count(),
            counts.n1 + counts.na
        );
        for (pos, &t) in output_tags.iter().enumerate() {
            let ok = if pos < self.n / 2 {
                t != Tag::One && t != Tag::Alpha
            } else {
                t != Tag::Zero && t != Tag::Alpha
            };
            if !ok {
                return Err(CoreError::Internal(format!(
                    "BSN postcondition violated: tag {t} at output {pos} of {}",
                    self.n
                )));
            }
        }

        Ok((
            out,
            BsnTrace {
                input_tags,
                after_scatter,
                output_tags,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::SemanticMsg;

    fn inject(n: usize, sets: &[(usize, Vec<usize>)]) -> Vec<Line<SemanticMsg>> {
        let mut lines: Vec<Line<SemanticMsg>> = (0..n).map(|_| Line::empty()).collect();
        for (src, dests) in sets {
            lines[*src] = Line {
                tag: Tag::Eps, // overwritten by Bsn::route
                payload: Some(SemanticMsg::new(*src, dests.clone())),
            };
        }
        lines
    }

    #[test]
    fn paper_example_level1_split() {
        // The 8×8 running example: inputs 0:{0,1}, 2:{3,4,7}, 3:{2}, 7:{5,6}.
        let bsn = Bsn::new(8).unwrap();
        let lines = inject(
            8,
            &[
                (0, vec![0, 1]),
                (2, vec![3, 4, 7]),
                (3, vec![2]),
                (7, vec![5, 6]),
            ],
        );
        let (out, trace) = bsn.route(lines, 0).unwrap();
        assert_eq!(
            trace.input_tags,
            vec![
                Tag::Zero,
                Tag::Eps,
                Tag::Alpha,
                Tag::Zero,
                Tag::Eps,
                Tag::Eps,
                Tag::Eps,
                Tag::One // {5,6} lies entirely in the lower half
            ]
        );
        // After the BSN: input 2's α splits {3,4,7} into {3} up + {4,7}
        // down. Upper half: {0,1}, {3}, {2}; lower half: {4,7}, {5,6}.
        let upper_sets: Vec<Vec<usize>> = out[..4]
            .iter()
            .filter_map(|l| l.payload.as_ref().map(|p| p.dests.clone()))
            .collect();
        let lower_sets: Vec<Vec<usize>> = out[4..]
            .iter()
            .filter_map(|l| l.payload.as_ref().map(|p| p.dests.clone()))
            .collect();
        assert_eq!(upper_sets.len(), 3);
        assert_eq!(lower_sets.len(), 2);
        assert!(upper_sets.iter().all(|d| d.iter().all(|&x| x < 4)));
        assert!(lower_sets.iter().all(|d| d.iter().all(|&x| x >= 4)));
    }

    #[test]
    fn input_tags_match_running_example() {
        // Input 7 has {5,6}: both in the lower half → tag 1, single connection.
        let bsn = Bsn::new(8).unwrap();
        let lines = inject(8, &[(7, vec![5, 6])]);
        let (_, trace) = bsn.route(lines, 0).unwrap();
        assert_eq!(trace.input_tags[7], Tag::One);
    }

    #[test]
    fn full_broadcast_from_one_input() {
        let bsn = Bsn::new(8).unwrap();
        let lines = inject(8, &[(3, vec![0, 1, 2, 3, 4, 5, 6, 7])]);
        let (out, _) = bsn.route(lines, 0).unwrap();
        // One α split into exactly two copies.
        let msgs: Vec<&SemanticMsg> = out.iter().filter_map(|l| l.payload.as_ref()).collect();
        assert_eq!(msgs.len(), 2);
        assert!(msgs.iter().all(|m| m.source == 3));
    }

    #[test]
    fn capacity_violation_detected() {
        // Hand-built illegal load: 5 messages all bound for the upper half.
        let bsn = Bsn::new(8).unwrap();
        let lines = inject(
            8,
            &[
                (0, vec![0]),
                (1, vec![1]),
                (2, vec![2]),
                (3, vec![3]),
                (4, vec![0]), // duplicate target: invalid as an assignment,
                              // but exercises the Eq. (2) guard
            ],
        );
        // 5 × tag 0 in an 8-wide BSN exceeds n/2 = 4.
        let err = bsn.route(lines, 0).unwrap_err();
        assert!(matches!(err, CoreError::HalfCapacityExceeded { n0: 5, .. }));
    }

    #[test]
    fn offset_block_addresses() {
        // A 4-wide BSN covering absolute outputs [4, 8).
        let bsn = Bsn::new(4).unwrap();
        let mut lines: Vec<Line<SemanticMsg>> = (0..4).map(|_| Line::empty()).collect();
        lines[1] = Line {
            tag: Tag::Eps,
            payload: Some(SemanticMsg::new(9, vec![4, 7])),
        };
        let (out, trace) = bsn.route(lines, 4).unwrap();
        assert_eq!(trace.input_tags[1], Tag::Alpha);
        let upper: Vec<&SemanticMsg> = out[..2].iter().filter_map(|l| l.payload.as_ref()).collect();
        let lower: Vec<&SemanticMsg> = out[2..].iter().filter_map(|l| l.payload.as_ref()).collect();
        assert_eq!(upper.len(), 1);
        assert_eq!(lower.len(), 1);
        assert_eq!(upper[0].dests, vec![4]);
        assert_eq!(lower[0].dests, vec![7]);
    }
}
