//! Incremental (streaming) routing-tag forwarding — the constant-buffer
//! claim of Section 7.1 / Fig. 10.
//!
//! The paper passes the remainder of a `SEQ` *alternately* to the upper and
//! lower subnetworks precisely so that a switch can forward the header as it
//! arrives, holding only "a constant number of buffers" per input. This
//! module implements that switch-local streaming splitter and measures its
//! buffer occupancy, verifying operationally that O(1) buffering suffices —
//! and that the streamed outputs equal the batch [`crate::tags::TagSeq`]
//! `descend` results.

use brsmn_switch::Tag;
use serde::{Deserialize, Serialize};

/// Where the splitter forwards the remainder tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForwardMode {
    /// Head was `0`: keep even-indexed remainder tags, for the upper branch.
    UpperOnly,
    /// Head was `1`: keep odd-indexed remainder tags, for the lower branch.
    LowerOnly,
    /// Head was `α`: even-indexed up, odd-indexed down (both branches).
    Both,
}

/// A switch-local streaming splitter: consumes one header tag per clock and
/// emits the subnetwork streams incrementally.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamSplitter {
    mode: Option<ForwardMode>,
    /// Parity of the next remainder tag (0 → upper slot, 1 → lower slot).
    parity: u8,
    /// Tags currently buffered awaiting output (at most one per branch —
    /// the O(1) claim, asserted).
    upper_buf: Option<Tag>,
    lower_buf: Option<Tag>,
    max_buffered: usize,
}

/// Output of one streaming step: at most one tag per branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StreamOut {
    /// Tag forwarded to the upper subnetwork this step, if any.
    pub upper: Option<Tag>,
    /// Tag forwarded to the lower subnetwork this step, if any.
    pub lower: Option<Tag>,
}

impl Default for StreamSplitter {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamSplitter {
    /// Creates an idle splitter (waiting for the head tag).
    pub fn new() -> Self {
        StreamSplitter {
            mode: None,
            parity: 0,
            upper_buf: None,
            lower_buf: None,
            max_buffered: 0,
        }
    }

    /// Feeds the next header tag. The first tag fed is the head `a_0` and
    /// sets the forwarding mode; subsequent tags are remainder tags and are
    /// forwarded (or dropped, for the branch not taken) immediately.
    pub fn push(&mut self, tag: Tag) -> StreamOut {
        match self.mode {
            None => {
                self.mode = Some(match tag {
                    Tag::Zero => ForwardMode::UpperOnly,
                    Tag::One => ForwardMode::LowerOnly,
                    Tag::Alpha => ForwardMode::Both,
                    Tag::Eps => {
                        // Idle input: nothing will follow.
                        ForwardMode::UpperOnly
                    }
                });
                StreamOut::default()
            }
            Some(mode) => {
                let to_upper = self.parity == 0;
                self.parity ^= 1;
                let mut out = StreamOut::default();
                match (mode, to_upper) {
                    (ForwardMode::UpperOnly, true) | (ForwardMode::Both, true) => {
                        debug_assert!(self.upper_buf.is_none(), "O(1) buffer exceeded");
                        self.upper_buf = Some(tag);
                    }
                    (ForwardMode::LowerOnly, false) | (ForwardMode::Both, false) => {
                        debug_assert!(self.lower_buf.is_none(), "O(1) buffer exceeded");
                        self.lower_buf = Some(tag);
                    }
                    _ => { /* tag belongs to the branch not taken: dropped */ }
                }
                self.max_buffered = self
                    .max_buffered
                    .max(self.upper_buf.is_some() as usize + self.lower_buf.is_some() as usize);
                // Buffers drain on the same clock (one link per branch).
                out.upper = self.upper_buf.take();
                out.lower = self.lower_buf.take();
                out
            }
        }
    }

    /// The forwarding mode chosen by the head tag (once fed).
    pub fn mode(&self) -> Option<ForwardMode> {
        self.mode
    }

    /// Peak number of tags buffered at once — the Section 7.1 claim is that
    /// this is O(1); here it never exceeds 2 (one per branch).
    pub fn max_buffered(&self) -> usize {
        self.max_buffered
    }
}

/// Streams an entire `SEQ` through a splitter, returning the two forwarded
/// streams and the peak buffer occupancy.
pub fn stream_split(tags: &[Tag]) -> (Vec<Tag>, Vec<Tag>, usize) {
    let mut sp = StreamSplitter::new();
    let mut up = Vec::new();
    let mut down = Vec::new();
    for &t in tags {
        let out = sp.push(t);
        if let Some(t) = out.upper {
            up.push(t);
        }
        if let Some(t) = out.lower {
            down.push(t);
        }
    }
    (up, down, sp.max_buffered())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::seq_for_dests;

    #[test]
    fn streaming_matches_batch_descend_for_alpha() {
        let seq = seq_for_dests(16, &[1, 4, 6, 9, 12, 13]).unwrap();
        assert_eq!(seq.head(), Tag::Alpha);
        let (up, down, peak) = stream_split(seq.tags());
        let (bup, bdown) = seq.split();
        assert_eq!(up, bup.tags());
        assert_eq!(down, bdown.tags());
        assert!(peak <= 2, "O(1) buffering violated: {peak}");
    }

    #[test]
    fn streaming_matches_batch_descend_for_unicast_branches() {
        for dests in [vec![2usize, 3], vec![12, 14]] {
            let seq = seq_for_dests(16, &dests).unwrap();
            let head = seq.head();
            let (up, down, peak) = stream_split(seq.tags());
            assert!(peak <= 2);
            match head {
                Tag::Zero => {
                    assert_eq!(up, seq.descend(Tag::Zero).tags());
                    assert!(down.is_empty());
                }
                Tag::One => {
                    assert_eq!(down, seq.descend(Tag::One).tags());
                    assert!(up.is_empty());
                }
                other => panic!("unexpected head {other}"),
            }
        }
    }

    #[test]
    fn buffer_is_constant_even_for_worst_case_headers() {
        // Full broadcast at n = 1024: the longest possible SEQ (1023 tags).
        let dests: Vec<usize> = (0..1024).collect();
        let seq = seq_for_dests(1024, &dests).unwrap();
        let (_, _, peak) = stream_split(seq.tags());
        assert!(peak <= 2, "{peak}");
    }

    #[test]
    fn recursive_streaming_delivers_leaf_tags() {
        // Stream a SEQ through a full tree of splitters; the leaves must
        // receive the level-log n tags that drive the final 2×2 switches.
        let n = 16usize;
        let dests = vec![0usize, 5, 6, 7, 10];
        let seq = seq_for_dests(n, &dests).unwrap();

        fn descend_stream(tags: &[Tag], base: usize, size: usize, out: &mut Vec<(usize, Tag)>) {
            if size == 2 {
                assert_eq!(tags.len(), 1);
                out.push((base, tags[0]));
                return;
            }
            let head = tags[0];
            let (up, down, peak) = stream_split(tags);
            assert!(peak <= 2);
            match head {
                Tag::Zero => descend_stream(&up, base, size / 2, out),
                Tag::One => descend_stream(&down, base + size / 2, size / 2, out),
                Tag::Alpha => {
                    descend_stream(&up, base, size / 2, out);
                    descend_stream(&down, base + size / 2, size / 2, out);
                }
                Tag::Eps => {}
            }
        }

        let mut leaves = Vec::new();
        descend_stream(seq.tags(), 0, n, &mut leaves);
        // Decode the leaf tags into outputs and compare with dests.
        let mut outputs = Vec::new();
        for (pair_base, tag) in leaves {
            match tag {
                Tag::Zero => outputs.push(pair_base),
                Tag::One => outputs.push(pair_base + 1),
                Tag::Alpha => {
                    outputs.push(pair_base);
                    outputs.push(pair_base + 1);
                }
                Tag::Eps => {}
            }
        }
        outputs.sort_unstable();
        assert_eq!(outputs, dests);
    }

    #[test]
    fn eps_head_forwards_nothing() {
        let mut sp = StreamSplitter::new();
        let out = sp.push(Tag::Eps);
        assert_eq!(out, StreamOut::default());
    }
}
