//! Error type shared by the network engines.

use brsmn_rbn::{PlanError, RbnError};
use brsmn_switch::SwitchError;
use brsmn_topology::SizeError;
use std::fmt;

/// Any failure of a core-network operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Invalid network size.
    Size(SizeError),
    /// A BSN load requested more than `n/2` outputs in one half (Eq. 2) —
    /// cannot arise from a valid [`crate::MulticastAssignment`], only from
    /// hand-built line loads.
    HalfCapacityExceeded {
        /// BSN size.
        n: usize,
        /// `0`-tagged inputs.
        n0: usize,
        /// `1`-tagged inputs.
        n1: usize,
        /// `α`-tagged inputs.
        na: usize,
    },
    /// Two messages contended for the same final output — impossible for
    /// disjoint destination sets; indicates corrupted input lines.
    OutputConflict {
        /// The contested output.
        output: usize,
    },
    /// An RBN-level failure (planner precondition or illegal switch op).
    Rbn(RbnError),
    /// The routed output failed post-route verification against its
    /// assignment ([`crate::verify_routing`]) and every stage of the
    /// graceful-degradation ladder — the signature of a faulty fabric.
    Verification(crate::verify::FaultReport),
    /// A driver was constructed with an unusable configuration (e.g. a
    /// [`crate::ShardedEngine`] with zero shards).
    Config(String),
    /// An invariant the paper guarantees was violated — a bug, never expected.
    Internal(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Size(e) => e.fmt(f),
            CoreError::HalfCapacityExceeded { n, n0, n1, na } => write!(
                f,
                "BSN of size {n} overloaded: n0={n0}, n1={n1}, nα={na} (each half holds {} outputs)",
                n / 2
            ),
            CoreError::OutputConflict { output } => {
                write!(f, "two messages arrived at output {output}")
            }
            CoreError::Rbn(e) => e.fmt(f),
            CoreError::Verification(report) => {
                write!(f, "output verification failed: {report}")
            }
            CoreError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            CoreError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<SizeError> for CoreError {
    fn from(e: SizeError) -> Self {
        CoreError::Size(e)
    }
}

impl From<RbnError> for CoreError {
    fn from(e: RbnError) -> Self {
        CoreError::Rbn(e)
    }
}

impl From<PlanError> for CoreError {
    fn from(e: PlanError) -> Self {
        CoreError::Rbn(RbnError::Plan(e))
    }
}

impl From<SwitchError> for CoreError {
    fn from(e: SwitchError) -> Self {
        CoreError::Rbn(RbnError::Switch(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::HalfCapacityExceeded {
            n: 8,
            n0: 5,
            n1: 0,
            na: 0,
        };
        assert!(e.to_string().contains("n0=5"));
        let e = CoreError::OutputConflict { output: 3 };
        assert!(e.to_string().contains("output 3"));
    }

    #[test]
    fn conversions_wrap() {
        let e: CoreError = SizeError { n: 7 }.into();
        assert!(matches!(e, CoreError::Size(_)));
    }
}
