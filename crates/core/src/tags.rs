//! Routing-tag trees and the `SEQ` wire format (Section 7.1, Figs. 9–11).
//!
//! A multicast in an `n × n` BRSMN is a complete binary tree of `log n`
//! levels with a tag from `{0, 1, α, ε}` at every node: the node at level `i`
//! covering an address range is tagged by the `i`-th most significant bit of
//! the destinations falling in that range (`0` = all in the first half, `1` =
//! all in the second, `α` = both, `ε` = none). The tree is unique for a given
//! destination set.
//!
//! The wire format `SEQ` (Eq. 12) concatenates the `order()`-interleaved
//! levels so that a switch can (a) consume the head tag to route the current
//! BSN and (b) forward the even-indexed remainder to the upper subnetwork and
//! the odd-indexed remainder to the lower one — using only a constant number
//! of buffers per input (Fig. 10).
//!
//! # Example: the `SEQ` format end to end
//!
//! ```
//! use brsmn_core::tags::{seq_for_dests, TagTree};
//!
//! // Fig. 9: the multicast {3, 4, 7} on an 8×8 network.
//! let seq = seq_for_dests(8, &[3, 4, 7]).unwrap();
//! assert_eq!(seq.to_string(), "α1αε011");   // n − 1 = 7 tags
//! assert_eq!(seq.len(), 7);
//! assert_eq!(seq.head().to_string(), "α");  // both halves → split
//!
//! // A splitting switch hands the even-indexed remainder to the upper
//! // subnetwork and the odd-indexed remainder to the lower one (Fig. 10).
//! let (upper, lower) = seq.split();
//! assert_eq!(upper.to_string(), "1ε1");
//! assert_eq!(lower.to_string(), "α01");
//!
//! // The stream decodes back to the destination set it encodes.
//! assert_eq!(seq.decode(0), vec![3, 4, 7]);
//! assert_eq!(TagTree::from_dests(8, &[3, 4, 7]).unwrap().to_seq(), seq);
//! ```

use brsmn_switch::Tag;
use brsmn_topology::{check_size, log2_exact, SizeError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The tagged complete binary tree of one multicast (Fig. 9).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagTree {
    n: usize,
    /// `levels[i-1]` holds the `2^{i-1}` tags of level `i`, left to right.
    levels: Vec<Vec<Tag>>,
}

impl TagTree {
    /// Builds the (unique) tag tree for the destination set `dests` of an
    /// `n × n` network. `dests` must be sorted ascending and in range.
    pub fn from_dests(n: usize, dests: &[usize]) -> Result<Self, SizeError> {
        check_size(n)?;
        debug_assert!(dests.windows(2).all(|w| w[0] < w[1]), "dests must be sorted");
        assert!(dests.iter().all(|&d| d < n), "destination out of range");
        let m = log2_exact(n) as usize;
        let mut levels = Vec::with_capacity(m);
        for i in 1..=m {
            let nodes = 1usize << (i - 1);
            let span = n >> (i - 1);
            let mut level = Vec::with_capacity(nodes);
            for k in 0..nodes {
                let lo = k * span;
                let mid = lo + span / 2;
                let hi = lo + span;
                // dests is sorted: count members of [lo, mid) and [mid, hi).
                let has_low = dests.iter().any(|&d| d >= lo && d < mid);
                let has_high = dests.iter().any(|&d| d >= mid && d < hi);
                level.push(match (has_low, has_high) {
                    (false, false) => Tag::Eps,
                    (true, false) => Tag::Zero,
                    (false, true) => Tag::One,
                    (true, true) => Tag::Alpha,
                });
            }
            levels.push(level);
        }
        Ok(TagTree { n, levels })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of levels (`log n`).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The tag of node `k` (0-based, left to right) at level `i` (1-based).
    pub fn tag(&self, i: usize, k: usize) -> Tag {
        self.levels[i - 1][k]
    }

    /// The root tag (level 1): the first routing decision.
    pub fn root(&self) -> Tag {
        self.levels[0][0]
    }

    /// Verifies the structural rules of Section 7.1: an `α` node has two
    /// non-`ε` children; a `0` (`1`) node has a non-`ε` left (right) child
    /// and an `ε` right (left) child; an `ε` node has two `ε` children.
    pub fn is_well_formed(&self) -> bool {
        for i in 1..self.depth() {
            for k in 0..(1usize << (i - 1)) {
                let t = self.tag(i, k);
                let left = self.tag(i + 1, 2 * k);
                let right = self.tag(i + 1, 2 * k + 1);
                let ok = match t {
                    Tag::Alpha => left != Tag::Eps && right != Tag::Eps,
                    Tag::Zero => left != Tag::Eps && right == Tag::Eps,
                    Tag::One => left == Tag::Eps && right != Tag::Eps,
                    Tag::Eps => left == Tag::Eps && right == Tag::Eps,
                };
                if !ok {
                    return false;
                }
            }
        }
        true
    }

    /// Serializes the tree to the `SEQ` wire format (Eq. 12).
    pub fn to_seq(&self) -> TagSeq {
        let mut out = Vec::with_capacity(self.n - 1);
        for level in &self.levels {
            out.extend(order(level));
        }
        TagSeq(out)
    }
}

/// `merge` (Eq. 10): perfect interleave of two equal-length sequences.
fn merge(b: &[Tag], c: &[Tag]) -> Vec<Tag> {
    debug_assert_eq!(b.len(), c.len());
    let mut out = Vec::with_capacity(b.len() * 2);
    for (x, y) in b.iter().zip(c) {
        out.push(*x);
        out.push(*y);
    }
    out
}

/// `order` (Eq. 11): recursively interleave the two halves of a
/// power-of-two-length sequence.
fn order(seq: &[Tag]) -> Vec<Tag> {
    if seq.len() <= 1 {
        return seq.to_vec();
    }
    let half = seq.len() / 2;
    merge(&order(&seq[..half]), &order(&seq[half..]))
}

/// The routing-tag sequence of one message: `n − 1` tags for an `n × n`
/// network, consumed one per BSN level.
///
/// Note the published text indexes the sequence up to `a_{2n−2}`, but the
/// complete binary tree it serializes has exactly `n − 1` nodes (cf. the
/// 15-tag example of Eq. 13 for n = 16); this implementation uses the
/// tree-consistent length `n − 1`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagSeq(Vec<Tag>);

impl TagSeq {
    /// Wraps a raw tag vector (length must be `2^k − 1`).
    pub fn new(tags: Vec<Tag>) -> Self {
        assert!(
            (tags.len() + 1).is_power_of_two(),
            "SEQ length must be 2^k − 1, got {}",
            tags.len()
        );
        TagSeq(tags)
    }

    /// The network size this sequence routes through (`len + 1`).
    pub fn network_size(&self) -> usize {
        self.0.len() + 1
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the trivial sequence of a 1×1 "network" (no tags left).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The head tag `a_0`: the routing decision for the current BSN.
    pub fn head(&self) -> Tag {
        self.0[0]
    }

    /// Raw access to the tags.
    pub fn tags(&self) -> &[Tag] {
        &self.0
    }

    /// Consumes the head and selects the subsequence for the half-size
    /// network indicated by `branch` (`Tag::Zero` = upper, `Tag::One` =
    /// lower): even-indexed remainder tags go up, odd-indexed go down
    /// (Section 7.1 / Fig. 10).
    pub fn descend(&self, branch: Tag) -> TagSeq {
        assert!(!self.is_empty());
        let rem = &self.0[1..];
        let keep_even = match branch {
            Tag::Zero => true,
            Tag::One => false,
            _ => panic!("descend takes branch 0 or 1, got {branch}"),
        };
        let picked: Vec<Tag> = rem
            .iter()
            .enumerate()
            .filter(|(idx, _)| (idx % 2 == 0) == keep_even)
            .map(|(_, &t)| t)
            .collect();
        TagSeq::new(picked)
    }

    /// Splits into both branches at once (used when the head is `α`).
    pub fn split(&self) -> (TagSeq, TagSeq) {
        (self.descend(Tag::Zero), self.descend(Tag::One))
    }

    /// Decodes the sequence back to the destination set it encodes, for
    /// outputs `[base, base + network_size)`.
    pub fn decode(&self, base: usize) -> Vec<usize> {
        let size = self.network_size();
        if size == 2 {
            return match self.head() {
                Tag::Eps => vec![],
                Tag::Zero => vec![base],
                Tag::One => vec![base + 1],
                Tag::Alpha => vec![base, base + 1],
            };
        }
        match self.head() {
            Tag::Eps => vec![],
            Tag::Zero => self.descend(Tag::Zero).decode(base),
            Tag::One => self.descend(Tag::One).decode(base + size / 2),
            Tag::Alpha => {
                let (up, down) = self.split();
                let mut d = up.decode(base);
                d.extend(down.decode(base + size / 2));
                d
            }
        }
    }
}

impl fmt::Display for TagSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.0 {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Convenience: the `SEQ` for a destination set.
pub fn seq_for_dests(n: usize, dests: &[usize]) -> Result<TagSeq, SizeError> {
    Ok(TagTree::from_dests(n, dests)?.to_seq())
}

#[cfg(test)]
mod tests {
    use super::*;
    use Tag::{Alpha, Eps, One, Zero};

    #[test]
    fn fig9a_tree_and_sequence() {
        // Fig. 9a: multicast {000, 001} (input 0's set in the running
        // example) → SEQ 00εαεεε.
        let tree = TagTree::from_dests(8, &[0, 1]).unwrap();
        assert!(tree.is_well_formed());
        assert_eq!(tree.root(), Zero);
        let seq = tree.to_seq();
        assert_eq!(seq.to_string(), "00εαεεε");
    }

    #[test]
    fn fig9b_tree_and_sequence() {
        // Fig. 9b: multicast {011, 100, 111} (input 2's set in the running
        // example) → SEQ α1αε011.
        let tree = TagTree::from_dests(8, &[3, 4, 7]).unwrap();
        assert!(tree.is_well_formed());
        let seq = tree.to_seq();
        assert_eq!(seq.to_string(), "α1αε011");
    }

    #[test]
    fn eq13_ordering_for_n16() {
        // Verify SEQ for n = 16 visits tree nodes in the order of Eq. (13):
        // t11, t21, t22, t31, t33, t32, t34, t41, t45, t43, t47, t42, t46, t44, t48.
        // We label node (level i, index k) with a distinct destination set so
        // each tag is unique... instead, check the order() permutation itself
        // on synthetic level sequences using distinguishable tags: map node
        // index to a tag pattern and compare positions.
        //
        // order() on [t1..t8] (level 4) must give t1,t5,t3,t7,t2,t6,t4,t8
        // where tk is the k-th element.
        let lvl4: Vec<Tag> = vec![Zero, One, Alpha, Eps, Zero, One, Alpha, Eps];
        let ordered = order(&lvl4);
        let expect_idx = [0usize, 4, 2, 6, 1, 5, 3, 7];
        let expect: Vec<Tag> = expect_idx.iter().map(|&i| lvl4[i]).collect();
        assert_eq!(ordered, expect);

        // Level 3 order: t31, t33, t32, t34.
        let lvl3 = vec![Zero, One, Alpha, Eps];
        assert_eq!(order(&lvl3), vec![Zero, Alpha, One, Eps]);

        // Level 2 order is the identity on two nodes.
        let lvl2 = vec![Zero, One];
        assert_eq!(order(&lvl2), vec![Zero, One]);
    }

    #[test]
    fn seq_length_is_n_minus_1() {
        for n in [2usize, 4, 8, 16, 32, 64] {
            let seq = seq_for_dests(n, &[0]).unwrap();
            assert_eq!(seq.len(), n - 1);
            assert_eq!(seq.network_size(), n);
        }
    }

    #[test]
    fn descend_recovers_subtree_sequences() {
        // Section 7.1's tag handling: for the left subtree of the n=16 tree,
        // descend(Zero) of SEQ must equal the SEQ of the left subtree's own
        // 8×8 multicast.
        let dests = [1usize, 4, 6, 9, 12, 13];
        let seq = seq_for_dests(16, &dests).unwrap();
        let left_dests: Vec<usize> = dests.iter().copied().filter(|&d| d < 8).collect();
        let right_dests: Vec<usize> = dests.iter().filter(|&&d| d >= 8).map(|&d| d - 8).collect();
        let (up, down) = seq.split();
        assert_eq!(up, seq_for_dests(8, &left_dests).unwrap());
        assert_eq!(down, seq_for_dests(8, &right_dests).unwrap());
    }

    #[test]
    fn decode_round_trip() {
        for n in [2usize, 4, 8, 16, 32] {
            for pattern in [
                vec![],
                vec![0],
                vec![n - 1],
                (0..n).collect::<Vec<_>>(),
                (0..n).step_by(2).collect::<Vec<_>>(),
                (0..n).filter(|x| x % 3 == 1).collect::<Vec<_>>(),
            ] {
                let seq = seq_for_dests(n, &pattern).unwrap();
                let mut decoded = seq.decode(0);
                decoded.sort_unstable();
                assert_eq!(decoded, pattern, "n={n}");
            }
        }
    }

    #[test]
    fn empty_multicast_is_all_eps() {
        let tree = TagTree::from_dests(8, &[]).unwrap();
        assert!(tree.is_well_formed());
        assert_eq!(tree.root(), Eps);
        assert_eq!(tree.to_seq().to_string(), "εεεεεεε");
    }

    #[test]
    fn broadcast_multicast_is_all_alpha_spine() {
        let tree = TagTree::from_dests(8, &[0, 1, 2, 3, 4, 5, 6, 7]).unwrap();
        assert!(tree.is_well_formed());
        for i in 1..=3 {
            for k in 0..(1usize << (i - 1)) {
                assert_eq!(tree.tag(i, k), Alpha);
            }
        }
    }

    #[test]
    fn unicast_tree_single_path() {
        // Destination 5 = 101: tags along the path are 1, 0, 1; everything
        // else ε.
        let tree = TagTree::from_dests(8, &[5]).unwrap();
        assert_eq!(tree.tag(1, 0), One);
        assert_eq!(tree.tag(2, 1), Zero);
        assert_eq!(tree.tag(3, 2), One);
        let eps_count = (1..=3)
            .flat_map(|i| (0..(1usize << (i - 1))).map(move |k| (i, k)))
            .filter(|&(i, k)| tree.tag(i, k) == Eps)
            .count();
        assert_eq!(eps_count, 4);
    }

    #[test]
    fn well_formedness_detects_corruption() {
        let mut tree = TagTree::from_dests(8, &[0, 4]).unwrap();
        assert!(tree.is_well_formed());
        // Corrupt: root says α but left child becomes ε.
        tree.levels[1][0] = Eps;
        assert!(!tree.is_well_formed());
    }

    #[test]
    #[should_panic]
    fn bad_seq_length_rejected() {
        let _ = TagSeq::new(vec![Zero, One]);
    }

    #[test]
    #[should_panic]
    fn descend_rejects_alpha_branch() {
        let seq = seq_for_dests(4, &[0]).unwrap();
        let _ = seq.descend(Alpha);
    }
}
