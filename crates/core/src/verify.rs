//! Output verification: checking a [`RoutingResult`] against the
//! [`MulticastAssignment`] it was supposed to realize.
//!
//! A healthy BRSMN realizes every assignment by the nonblocking theorem, so
//! on a perfect fabric this check never fires. Its purpose is **fault
//! detection**: a stuck switch, dead link or corrupted tag stream misroutes
//! silently, and the only end-to-end observable is the per-output source
//! table. [`verify_routing`] compares that table against the assignment and,
//! on mismatch, emits a [`FaultReport`] that localizes the first level/block
//! of the recursion (Fig. 1) where the observed delivery is inconsistent
//! with *any* correct route — the coarsest region that must contain a faulty
//! element.
//!
//! Localization uses the tag invariant of Section 3: at level `i` the
//! network is partitioned into blocks of `n/2^{i−1}` consecutive outputs,
//! and a message may legally occupy a block only if its destination set
//! intersects that block. If input `a`'s message surfaced at output `o`
//! with `I_a ∩ block_i(o) = ∅`, the misrouting happened no later than the
//! level-`(i−1)` BSN feeding that block.
//!
//! ```
//! use brsmn_core::{verify_routing, MulticastAssignment, RoutingResult};
//!
//! let asg = MulticastAssignment::from_sets(4, vec![
//!     vec![0], vec![], vec![2, 3], vec![],
//! ]).unwrap();
//!
//! // Output 1 received input 2's message, which belongs in {2, 3}.
//! let bad = RoutingResult::new(vec![Some(0), Some(2), Some(2), Some(2)]);
//! let report = verify_routing(&asg, &bad).unwrap_err();
//! assert_eq!(report.divergences[0].output, 1);
//! // {2,3} never intersects the upper half {0,1}: level 1 misrouted.
//! assert_eq!(report.first_divergent_level, 1);
//! ```

use crate::assignment::{MulticastAssignment, RoutingResult};
use brsmn_topology::log2_exact;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One output whose delivery disagrees with the assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// The output address.
    pub output: usize,
    /// The input that should have reached it (`None` = should be idle).
    pub expected: Option<usize>,
    /// The input whose message actually arrived (`None` = nothing arrived).
    pub actual: Option<usize>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = |s: Option<usize>| match s {
            Some(i) => format!("input {i}"),
            None => "idle".to_string(),
        };
        write!(
            f,
            "output {}: expected {}, got {}",
            self.output,
            show(self.expected),
            show(self.actual)
        )
    }
}

/// Structured verdict of a failed verification: every divergent output plus
/// the earliest level/block of the Fig. 1 recursion consistent with the
/// observed damage.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Network size.
    pub n: usize,
    /// All divergent outputs, ascending by output address.
    pub divergences: Vec<Divergence>,
    /// The earliest 1-based level whose BSN (or, at level `log2(n)`, final
    /// 2×2 stage) must have misrouted. Pure message losses carry no position
    /// information and localize to level 1.
    pub first_divergent_level: usize,
    /// The block index at [`Self::first_divergent_level`] (there are
    /// `2^{level−1}` blocks of `n/2^{level−1}` outputs each).
    pub first_divergent_block: usize,
}

impl FaultReport {
    /// Outputs delivered wrongly (misrouted or spurious, not merely lost).
    pub fn misdeliveries(&self) -> usize {
        self.divergences
            .iter()
            .filter(|d| d.actual.is_some())
            .count()
    }

    /// Outputs that should have received a message but got nothing.
    pub fn losses(&self) -> usize {
        self.divergences
            .iter()
            .filter(|d| d.actual.is_none())
            .count()
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} divergent output(s), first at level {} block {}",
            self.divergences.len(),
            self.first_divergent_level,
            self.first_divergent_block
        )
    }
}

/// Checks that `result` realizes `asg` exactly: every destination in every
/// `I_i` received input `i`'s message, and no other output received
/// anything. Returns a localizing [`FaultReport`] on the first failure.
///
/// # Panics
///
/// Panics if `result.n() != asg.n()` — results are only comparable against
/// the assignment they were routed from.
pub fn verify_routing(
    asg: &MulticastAssignment,
    result: &RoutingResult,
) -> Result<(), FaultReport> {
    let n = asg.n();
    assert_eq!(result.n(), n, "result/assignment size mismatch");

    let divergences: Vec<Divergence> = (0..n)
        .filter_map(|o| {
            let expected = asg.source_of_output(o);
            let actual = result.output_source(o);
            (expected != actual).then_some(Divergence {
                output: o,
                expected,
                actual,
            })
        })
        .collect();

    if divergences.is_empty() {
        return Ok(());
    }

    let (first_divergent_level, first_divergent_block) = divergences
        .iter()
        .map(|d| localize(asg, n, d))
        .min()
        .expect("divergences is non-empty");

    Err(FaultReport {
        n,
        divergences,
        first_divergent_level,
        first_divergent_block,
    })
}

/// The deepest level whose block containing `d.output` still intersects the
/// misdelivered message's destination set — i.e. the level *within which*
/// the route went wrong. Losses (no arriving message) return level 1.
fn localize(asg: &MulticastAssignment, n: usize, d: &Divergence) -> (usize, usize) {
    let levels = log2_exact(n) as usize;
    let Some(src) = d.actual else {
        return (1, 0);
    };
    let dests = asg.dests(src);
    let mut level = 1;
    while level < levels {
        // Would the message still be legally placed entering level+1?
        let bs = n >> level; // block size at level + 1
        let lo = (d.output / bs) * bs;
        if dests.iter().any(|&x| x >= lo && x < lo + bs) {
            level += 1;
        } else {
            break;
        }
    }
    (level, d.output / (n >> (level - 1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_example() -> MulticastAssignment {
        MulticastAssignment::from_sets(
            8,
            vec![
                vec![0, 1],
                vec![],
                vec![3, 4, 7],
                vec![2],
                vec![],
                vec![],
                vec![],
                vec![5, 6],
            ],
        )
        .unwrap()
    }

    fn correct_result() -> RoutingResult {
        RoutingResult::new(vec![
            Some(0),
            Some(0),
            Some(3),
            Some(2),
            Some(2),
            Some(7),
            Some(7),
            Some(2),
        ])
    }

    #[test]
    fn correct_result_verifies() {
        assert!(verify_routing(&paper_example(), &correct_result()).is_ok());
    }

    #[test]
    fn loss_localizes_to_level_one() {
        let asg = paper_example();
        let mut src: Vec<Option<usize>> = (0..8).map(|o| correct_result().output_source(o)).collect();
        src[5] = None; // input 7's copy for output 5 vanished
        let report = verify_routing(&asg, &RoutingResult::new(src)).unwrap_err();
        assert_eq!(report.losses(), 1);
        assert_eq!(report.misdeliveries(), 0);
        assert_eq!(report.first_divergent_level, 1);
        assert_eq!(report.first_divergent_block, 0);
        assert_eq!(
            report.divergences,
            vec![Divergence {
                output: 5,
                expected: Some(7),
                actual: None
            }]
        );
    }

    #[test]
    fn cross_half_misdelivery_localizes_to_level_one() {
        let asg = paper_example();
        let mut src: Vec<Option<usize>> = (0..8).map(|o| correct_result().output_source(o)).collect();
        // Input 0 belongs entirely in {0,1} (upper half); surfacing at
        // output 6 means the level-1 BSN already sent it the wrong way.
        src[6] = Some(0);
        let report = verify_routing(&asg, &RoutingResult::new(src)).unwrap_err();
        assert_eq!(report.first_divergent_level, 1);
        assert_eq!(report.first_divergent_block, 0);
    }

    #[test]
    fn final_stage_misdelivery_localizes_to_last_level() {
        let asg = paper_example();
        let mut src: Vec<Option<usize>> = (0..8).map(|o| correct_result().output_source(o)).collect();
        // Outputs 2 and 3 swapped: inputs 3 and 2 both legally occupy the
        // final 2×2 block {2,3}, so only the final stage can be blamed.
        src[2] = Some(2);
        src[3] = Some(3);
        let report = verify_routing(&asg, &RoutingResult::new(src)).unwrap_err();
        assert_eq!(report.divergences.len(), 2);
        assert_eq!(report.first_divergent_level, 3); // log2(8) levels
        assert_eq!(report.first_divergent_block, 1); // block {2,3}
    }

    #[test]
    fn spurious_delivery_from_idle_input_is_divergent() {
        let asg = paper_example();
        let mut src: Vec<Option<usize>> = (0..8).map(|o| correct_result().output_source(o)).collect();
        src[2] = Some(4); // input 4 is idle; any delivery is spurious
        let report = verify_routing(&asg, &RoutingResult::new(src)).unwrap_err();
        assert_eq!(report.misdeliveries(), 1);
        assert_eq!(report.losses(), 0); // input 3's loss *is* the misdelivery
        assert_eq!(report.first_divergent_level, 1);
    }

    #[test]
    fn duplicate_delivery_is_divergent() {
        let asg = paper_example();
        let mut src: Vec<Option<usize>> = (0..8).map(|o| correct_result().output_source(o)).collect();
        // Input 2 legitimately reaches {3,4,7}; a fourth copy at output 6
        // displaces input 7's copy.
        src[6] = Some(2);
        let report = verify_routing(&asg, &RoutingResult::new(src)).unwrap_err();
        // Output 6 sits in final block {6,7} which intersects I_2 = {3,4,7}
        // at 7, so the duplicate is only provably wrong at the final stage.
        assert_eq!(report.first_divergent_level, 3);
        assert_eq!(report.first_divergent_block, 3);
    }

    #[test]
    fn report_display_and_serde() {
        let asg = paper_example();
        let report = verify_routing(&asg, &RoutingResult::new(vec![None; 8])).unwrap_err();
        assert!(report.to_string().contains("level 1"));
        let json = serde_json::to_string(&report).unwrap();
        let back: FaultReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let asg = paper_example();
        let _ = verify_routing(&asg, &RoutingResult::new(vec![None; 4]));
    }
}
