//! Acceptance property: the zero-allocation fast path is **bit-identical**
//! to the PR-1 allocating reference router — same routing result, same
//! per-level trace (input/after-scatter/output tags of every BSN, final
//! tags, final settings) — across dense, sparse and α-heavy multicasts at
//! n ∈ {8, 16, 64}, including when one scratch arena is reused frame after
//! frame.

use brsmn_core::{Brsmn, MulticastAssignment, RouteScratch};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;

/// Builds a valid multicast assignment from a per-output source choice
/// (each output claimed by at most one input — always realizable).
fn assignment_from_choices(n: usize, choices: &[Option<usize>]) -> MulticastAssignment {
    let mut sets = vec![Vec::new(); n];
    for (o, c) in choices.iter().enumerate() {
        if let Some(src) = c {
            sets[*src].push(o);
        }
    }
    MulticastAssignment::from_sets(n, sets).expect("choices form a valid assignment")
}

/// One frame drawn from three load shapes: **dense** (most outputs covered,
/// sources spread across all inputs), **sparse** (few outputs covered), and
/// **α-heavy** (a handful of sources share all outputs, so destination sets
/// straddle both halves at every level — maximal α splitting).
fn shaped(n: usize) -> impl Strategy<Value = MulticastAssignment> {
    (
        0u8..3,
        vec(option::weighted(0.9, 0..n), n),
        1usize..=4,
        vec(0usize..4, n),
    )
        .prop_map(move |(shape, choices, k, picks)| match shape {
            0 => assignment_from_choices(n, &choices),
            1 => {
                let thinned: Vec<Option<usize>> = choices
                    .iter()
                    .enumerate()
                    .map(|(o, c)| if o % 3 == 0 { *c } else { None })
                    .collect();
                assignment_from_choices(n, &thinned)
            }
            _ => {
                // k distinct, spread-out sources claim every output.
                let choices: Vec<Option<usize>> =
                    picks.iter().map(|&i| Some((i % k) * n / 4)).collect();
                assignment_from_choices(n, &choices)
            }
        })
}

/// One frame over n ∈ {8, 16, 64}.
fn frames() -> impl Strategy<Value = (usize, MulticastAssignment)> {
    prop_oneof![Just(8usize), Just(16), Just(64)].prop_flat_map(|n| (Just(n), shaped(n)))
}

/// A batch of frames over one shared size (for scratch-reuse checks).
fn frame_batches() -> impl Strategy<Value = (usize, Vec<MulticastAssignment>)> {
    prop_oneof![Just(8usize), Just(16), Just(64)]
        .prop_flat_map(|n| (Just(n), vec(shaped(n), 8..=12)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_route_matches_reference((n, asg) in frames()) {
        let net = Brsmn::new(n).unwrap();
        let want = net.route_reference(&asg).unwrap();
        prop_assert!(want.realizes(&asg));
        prop_assert_eq!(&net.route(&asg).unwrap(), &want);
        // The self-routing engine (tag streams through the generic in-place
        // router) agrees too.
        prop_assert_eq!(&net.route_self_routing(&asg).unwrap(), &want);
    }

    #[test]
    fn fast_trace_matches_reference((n, asg) in frames()) {
        let net = Brsmn::new(n).unwrap();
        let (want_r, want_t) = net.route_reference_traced(&asg).unwrap();
        let (got_r, got_t) = net.route_traced(&asg).unwrap();
        prop_assert_eq!(&got_r, &want_r);
        // Bit-identical switch program: every BSN's three tag snapshots,
        // the final-stage tags and the final settings all coincide.
        prop_assert_eq!(&got_t, &want_t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn scratch_reuse_across_frames_is_stable((n, batch) in frame_batches()) {
        let net = Brsmn::new(n).unwrap();
        let mut scratch = RouteScratch::new(n).unwrap();
        let mut footprint_after_first = None;
        for asg in &batch {
            let want = net.route_reference(asg).unwrap();
            prop_assert_eq!(&net.route_buffered(asg, &mut scratch).unwrap(), &want);
            // route_into leaves the same delivery readable from the arena.
            net.route_into(asg, &mut scratch).unwrap();
            let from_arena: Vec<Option<usize>> = scratch.output_sources().collect();
            let explicit: Vec<Option<usize>> =
                (0..n).map(|o| want.output_source(o)).collect();
            prop_assert_eq!(from_arena, explicit);
            // The arena never regrows once warm.
            let fp = scratch.footprint_bytes();
            prop_assert_eq!(*footprint_after_first.get_or_insert(fp), fp);
        }
    }
}
