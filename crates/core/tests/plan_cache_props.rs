//! Acceptance properties of the plan-capture cache: a replayed plan is
//! **bit-identical** to fresh planning — same routing result, same per-level
//! trace, same final settings table — across dense, sparse and α-heavy
//! multicasts; the assignment fingerprint is order-independent but never
//! trusted alone (a colliding fingerprint with a different assignment is a
//! miss, not a wrong plan); and an [`Engine`] under LRU pressure (capacity 1,
//! capacity < distinct frames) stays correct while evicting.

use brsmn_core::plancache::fingerprint_inputs;
use brsmn_core::{
    plan_fingerprint, Brsmn, Engine, EngineConfig, MulticastAssignment, PlanCache, RouteScratch,
};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a valid multicast assignment from a per-output source choice
/// (each output claimed by at most one input — always realizable).
fn assignment_from_choices(n: usize, choices: &[Option<usize>]) -> MulticastAssignment {
    let mut sets = vec![Vec::new(); n];
    for (o, c) in choices.iter().enumerate() {
        if let Some(src) = c {
            sets[*src].push(o);
        }
    }
    MulticastAssignment::from_sets(n, sets).expect("choices form a valid assignment")
}

/// One frame drawn from three load shapes: **dense**, **sparse**, and
/// **α-heavy** (a handful of sources share all outputs, so destination sets
/// straddle both halves at every level).
fn shaped(n: usize) -> impl Strategy<Value = MulticastAssignment> {
    (
        0u8..3,
        vec(option::weighted(0.9, 0..n), n),
        1usize..=4,
        vec(0usize..4, n),
    )
        .prop_map(move |(shape, choices, k, picks)| match shape {
            0 => assignment_from_choices(n, &choices),
            1 => {
                let thinned: Vec<Option<usize>> = choices
                    .iter()
                    .enumerate()
                    .map(|(o, c)| if o % 3 == 0 { *c } else { None })
                    .collect();
                assignment_from_choices(n, &thinned)
            }
            _ => {
                let choices: Vec<Option<usize>> =
                    picks.iter().map(|&i| Some((i % k) * n / 4)).collect();
                assignment_from_choices(n, &choices)
            }
        })
}

/// One frame over n ∈ {8, 16, 64}.
fn frames() -> impl Strategy<Value = (usize, MulticastAssignment)> {
    prop_oneof![Just(8usize), Just(16), Just(64)].prop_flat_map(|n| (Just(n), shaped(n)))
}

/// A batch of frames over one shared size.
fn frame_batches() -> impl Strategy<Value = (usize, Vec<MulticastAssignment>)> {
    prop_oneof![Just(8usize), Just(16), Just(64)]
        .prop_flat_map(|n| (Just(n), vec(shaped(n), 6..=10)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Capture → replay reproduces the fresh route bit for bit: result,
    /// full per-level trace, and the settings table left in the scratch
    /// arena all coincide.
    #[test]
    fn replay_is_bit_identical_to_fresh_planning((n, asg) in frames()) {
        let net = Brsmn::new(n).unwrap();
        let mut scratch = RouteScratch::new(n).unwrap();

        let (want_r, want_t) = net.route_traced(&asg).unwrap();
        let want_settings = {
            net.route_into(&asg, &mut scratch).unwrap();
            scratch.settings_table().clone()
        };

        let (captured_r, plan) = net.route_capture(&asg, &mut scratch).unwrap();
        prop_assert_eq!(&captured_r, &want_r, "capturing perturbed the route");

        let (replay_r, replay_t) = net.route_replay_traced(&asg, &plan, &mut scratch).unwrap();
        prop_assert_eq!(&replay_r, &want_r);
        prop_assert_eq!(&replay_t, &want_t);
        prop_assert_eq!(scratch.settings_table(), &want_settings);

        // The lean (untraced) replay delivers the same source table.
        net.route_replay_into(&asg, &plan, &mut scratch).unwrap();
        let from_arena: Vec<Option<usize>> = scratch.output_sources().collect();
        let explicit: Vec<Option<usize>> = (0..n).map(|o| want_r.output_source(o)).collect();
        prop_assert_eq!(from_arena, explicit);
    }

    /// The fingerprint hashes the *set* of (input, destination-set) pairs:
    /// feeding the inputs in any order gives the same key, while nearby
    /// assignments (one destination moved) get different keys — and even a
    /// forced key collision cannot produce a wrong plan, because lookup
    /// compares the full assignment.
    #[test]
    fn fingerprint_is_order_independent_but_collision_checked(
        (n, asg) in frames(),
        rot in 0usize..64,
    ) {
        let inputs: Vec<(usize, &[usize])> = asg.iter().filter(|(_, d)| !d.is_empty()).collect();
        prop_assume!(!inputs.is_empty());
        let mut rotated = inputs.clone();
        rotated.rotate_left(rot % inputs.len());
        let mut reversed = inputs.clone();
        reversed.reverse();
        let fp = plan_fingerprint(&asg);
        prop_assert_eq!(fingerprint_inputs(n, inputs), fp);
        prop_assert_eq!(fingerprint_inputs(n, rotated), fp);
        prop_assert_eq!(fingerprint_inputs(n, reversed), fp);

        // Move one destination to a different output: the assignment
        // differs, and whatever its fingerprint, a lookup under the
        // original key must refuse to serve the original plan for it.
        let (src, dests) = asg
            .iter()
            .find(|(_, d)| !d.is_empty())
            .map(|(i, d)| (i, d.to_vec()))
            .unwrap();
        let vacant = (0..n).find(|o| asg.source_of_output(*o).is_none());
        prop_assume!(vacant.is_some());
        let mut sets: Vec<Vec<usize>> = (0..n).map(|i| asg.dests(i).to_vec()).collect();
        sets[src] = {
            let mut d = dests.clone();
            d[0] = vacant.unwrap();
            d.sort_unstable();
            d
        };
        let other = MulticastAssignment::from_sets(n, sets).unwrap();
        prop_assert_ne!(&other, &asg);

        let net = Brsmn::new(n).unwrap();
        let mut scratch = RouteScratch::new(n).unwrap();
        let (_, plan) = net.route_capture(&asg, &mut scratch).unwrap();
        let cache = PlanCache::new(8);
        cache.insert(fp, &asg, Arc::new(plan));
        // Same key, different assignment: the equality check turns the
        // would-be collision into a miss.
        prop_assert!(cache.lookup(fp, &other).is_none());
        prop_assert!(cache.lookup(fp, &asg).is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An engine whose cache is far too small (capacity 1, then capacity
    /// below the number of distinct frames) keeps evicting and re-capturing
    /// — and every delivered frame still matches the cache-less engine.
    #[test]
    fn eviction_pressure_never_corrupts_results((n, batch) in frame_batches()) {
        let plain = Engine::with_config(n, EngineConfig::sequential()).unwrap();
        // Cycle the batch three times so evicted plans get re-requested.
        let cycled: Vec<MulticastAssignment> = batch
            .iter()
            .cycle()
            .take(batch.len() * 3)
            .cloned()
            .collect();
        let want = plain.route_batch(&cycled);
        for capacity in [1usize, (batch.len() / 2).max(1)] {
            let cached = Engine::with_config(
                n,
                EngineConfig::sequential().with_plan_cache(capacity),
            )
            .unwrap();
            let got = cached.route_batch(&cycled);
            for (a, b) in want.results.iter().zip(&got.results) {
                prop_assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
            }
            prop_assert_eq!(
                got.stats.plan_hits + got.stats.plan_misses,
                cycled.len() as u64
            );
            let resident = cached.plan_cache().unwrap().len();
            prop_assert!(resident <= capacity, "{} plans in a {}-plan cache", resident, capacity);
        }
    }
}
