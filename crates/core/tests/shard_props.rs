//! Acceptance property for the sharded engine: striping a batch across
//! `S` independent fabrics is **bit-identical** to routing it through one
//! [`Engine`] — same per-frame results in the same order — for arbitrary
//! dense/sparse/α-heavy batches at n ∈ {8, 16, 64} and 2–4 shards, and the
//! merged [`EngineStats`] preserve the work counters exactly.

use brsmn_core::{CoreError, Engine, EngineConfig, MulticastAssignment, ShardedEngine};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;

/// Builds a valid multicast assignment from a per-output source choice
/// (each output claimed by at most one input — always realizable).
fn assignment_from_choices(n: usize, choices: &[Option<usize>]) -> MulticastAssignment {
    let mut sets = vec![Vec::new(); n];
    for (o, c) in choices.iter().enumerate() {
        if let Some(src) = c {
            sets[*src].push(o);
        }
    }
    MulticastAssignment::from_sets(n, sets).expect("choices form a valid assignment")
}

/// One frame drawn from three load shapes (dense / sparse / α-heavy); same
/// generator family as `fastpath_equivalence.rs`.
fn shaped(n: usize) -> impl Strategy<Value = MulticastAssignment> {
    (
        0u8..3,
        vec(option::weighted(0.9, 0..n), n),
        1usize..=4,
        vec(0usize..4, n),
    )
        .prop_map(move |(shape, choices, k, picks)| match shape {
            0 => assignment_from_choices(n, &choices),
            1 => {
                let thinned: Vec<Option<usize>> = choices
                    .iter()
                    .enumerate()
                    .map(|(o, c)| if o % 3 == 0 { *c } else { None })
                    .collect();
                assignment_from_choices(n, &thinned)
            }
            _ => {
                let choices: Vec<Option<usize>> =
                    picks.iter().map(|&i| Some((i % k) * n / 4)).collect();
                assignment_from_choices(n, &choices)
            }
        })
}

/// A batch over one shared size, plus a shard count ≥ 2.
fn sharded_batches() -> impl Strategy<Value = (usize, Vec<MulticastAssignment>, usize)> {
    prop_oneof![Just(8usize), Just(16), Just(64)]
        .prop_flat_map(|n| (Just(n), vec(shaped(n), 1..=13), 2usize..=4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_engine_is_bit_identical_to_single((n, batch, shards) in sharded_batches()) {
        let single = Engine::with_config(n, EngineConfig::sequential()).unwrap();
        let sharded =
            ShardedEngine::with_config(n, shards, EngineConfig::sequential()).unwrap();
        prop_assert_eq!(sharded.num_shards(), shards);

        let a = single.route_batch(&batch);
        let b = sharded.route_batch(&batch);

        // Bit-identical per-frame outputs, in input order.
        prop_assert_eq!(a.results.len(), b.results.len());
        for (i, (x, y)) in a.results.iter().zip(&b.results).enumerate() {
            prop_assert_eq!(
                x.as_ref().unwrap(),
                y.as_ref().unwrap(),
                "frame {} diverged under sharding",
                i
            );
        }

        // Merged stats preserve the work exactly: same frames, same switch
        // settings, same planner sweeps, same fast-path coverage.
        prop_assert_eq!(a.stats.batch, b.stats.batch);
        prop_assert_eq!(a.stats.frames_ok, b.stats.frames_ok);
        prop_assert_eq!(a.stats.frames_failed, b.stats.frames_failed);
        prop_assert_eq!(
            a.stats.stages.switch_settings,
            b.stats.stages.switch_settings
        );
        prop_assert_eq!(a.stats.stages.sweep_passes, b.stats.stages.sweep_passes);
        prop_assert_eq!(a.stats.fastpath_frames, b.stats.fastpath_frames);
        prop_assert_eq!(a.stats.stages.final_switches, b.stats.stages.final_switches);
    }
}

#[test]
fn zero_shards_is_a_typed_error() {
    match ShardedEngine::new(8, 0) {
        Err(CoreError::Config(msg)) => assert!(msg.contains("shard"), "{msg}"),
        other => panic!("expected Config error, got {other:?}"),
    }
}

#[test]
fn empty_and_single_frame_batches_route() {
    let sharded = ShardedEngine::new(8, 3).unwrap();
    let out = sharded.route_batch(&[]);
    assert!(out.results.is_empty());
    assert_eq!(out.stats.batch, 0);

    let mut sets = vec![Vec::new(); 8];
    sets[2] = vec![0, 5, 7];
    let asg = MulticastAssignment::from_sets(8, sets).unwrap();
    let out = sharded.route_batch(std::slice::from_ref(&asg));
    assert!(out.results[0].as_ref().unwrap().realizes(&asg));
}

#[test]
fn batches_smaller_than_the_shard_count_route() {
    // 2 frames over 4 shards: two stripes carry one frame, two run empty.
    let n = 16;
    let batch: Vec<MulticastAssignment> = (0..2)
        .map(|f| {
            let mut sets = vec![Vec::new(); n];
            sets[f] = (0..n).collect();
            MulticastAssignment::from_sets(n, sets).unwrap()
        })
        .collect();
    let single = Engine::with_config(n, EngineConfig::sequential()).unwrap();
    let sharded = ShardedEngine::with_config(n, 4, EngineConfig::sequential()).unwrap();
    let a = single.route_batch(&batch);
    let b = sharded.route_batch(&batch);
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(x.as_ref().unwrap(), y.as_ref().unwrap());
    }
    assert_eq!(b.stats.frames_ok, 2);
}
