//! Property-based tests for the routing-tag machinery (Section 7.1): tag
//! trees, `SEQ` serialization, splitting, and decoding.

use brsmn_core::{seq_for_dests, TagTree};
use brsmn_switch::Tag;
use proptest::prelude::*;

fn arb_dests(max_pow: u32) -> impl Strategy<Value = (usize, Vec<usize>)> {
    (1u32..=max_pow).prop_flat_map(|m| {
        let n = 1usize << m;
        proptest::collection::vec(any::<bool>(), n).prop_map(move |mask| {
            let dests: Vec<usize> = (0..n).filter(|&i| mask[i]).collect();
            (n, dests)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every tag tree built from a destination set is well-formed (the
    /// uniqueness rules of Section 7.1).
    #[test]
    fn trees_are_well_formed((n, dests) in arb_dests(8)) {
        let tree = TagTree::from_dests(n, &dests).unwrap();
        prop_assert!(tree.is_well_formed());
        prop_assert_eq!(tree.depth(), n.trailing_zeros() as usize);
    }

    /// SEQ round-trips: encode then decode recovers the destination set.
    #[test]
    fn seq_round_trips((n, dests) in arb_dests(8)) {
        let seq = seq_for_dests(n, &dests).unwrap();
        prop_assert_eq!(seq.len(), n - 1);
        let mut decoded = seq.decode(0);
        decoded.sort_unstable();
        prop_assert_eq!(decoded, dests);
    }

    /// Splitting a SEQ yields exactly the left/right subtree sequences:
    /// descend(0) encodes the lower-half destinations, descend(1) the
    /// upper-half destinations rebased.
    #[test]
    fn seq_split_matches_subtrees((n, dests) in arb_dests(8)) {
        prop_assume!(n >= 4);
        let seq = seq_for_dests(n, &dests).unwrap();
        let (up, down) = seq.split();
        let left: Vec<usize> = dests.iter().copied().filter(|&d| d < n / 2).collect();
        let right: Vec<usize> = dests.iter().filter(|&&d| d >= n / 2).map(|&d| d - n / 2).collect();
        prop_assert_eq!(up, seq_for_dests(n / 2, &left).unwrap());
        prop_assert_eq!(down, seq_for_dests(n / 2, &right).unwrap());
    }

    /// The head tag agrees with the destination-set semantics.
    #[test]
    fn head_tag_semantics((n, dests) in arb_dests(8)) {
        let seq = seq_for_dests(n, &dests).unwrap();
        let has_low = dests.iter().any(|&d| d < n / 2);
        let has_high = dests.iter().any(|&d| d >= n / 2);
        let expect = match (has_low, has_high) {
            (false, false) => Tag::Eps,
            (true, false) => Tag::Zero,
            (false, true) => Tag::One,
            (true, true) => Tag::Alpha,
        };
        prop_assert_eq!(seq.head(), expect);
    }

    /// The number of ε tags in a SEQ counts the pruned subtrees: for a
    /// unicast there are exactly (n−1) − log n of the n−1 nodes... more
    /// robustly: the number of non-ε tags equals the number of tree nodes
    /// whose range intersects the destination set.
    #[test]
    fn non_eps_tags_count_covered_nodes((n, dests) in arb_dests(7)) {
        let seq = seq_for_dests(n, &dests).unwrap();
        let non_eps = seq.tags().iter().filter(|&&t| t != Tag::Eps).count();
        // Count tree nodes covering at least one destination.
        let m = n.trailing_zeros() as usize;
        let mut covered = 0usize;
        for i in 1..=m {
            let span = n >> (i - 1);
            for k in 0..(1usize << (i - 1)) {
                let lo = k * span;
                if dests.iter().any(|&d| d >= lo && d < lo + span) {
                    covered += 1;
                }
            }
        }
        prop_assert_eq!(non_eps, covered);
    }
}

/// Unicast SEQ degenerates to the address path: exactly `log n` non-ε tags,
/// spelling the binary address.
#[test]
fn unicast_seq_spells_address() {
    for n in [4usize, 8, 16, 32] {
        let m = n.trailing_zeros() as usize;
        for target in 0..n {
            let tree = TagTree::from_dests(n, &[target]).unwrap();
            // The non-ε node at each level carries bit i of the address.
            for i in 1..=m {
                let expect_bit = (target >> (m - i)) & 1;
                let k = target >> (m - i + 1); // index of the covering node
                let tag = tree.tag(i, k);
                let expect = if expect_bit == 0 { Tag::Zero } else { Tag::One };
                assert_eq!(tag, expect, "n={n} target={target} level={i}");
            }
            let seq = tree.to_seq();
            let non_eps = seq.tags().iter().filter(|&&t| t != Tag::Eps).count();
            assert_eq!(non_eps, m);
        }
    }
}
