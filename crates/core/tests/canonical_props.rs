//! Acceptance properties of the canonical cache tier: canonicalization is
//! a **total, idempotent** map whose fibers are exactly the relabeling
//! classes (any two input/output relabelings of a frame share one
//! representative and one fingerprint); the permuted replay path serves a
//! relabeled frame **bit-identically** to fresh planning from another
//! member's captured plan; and the whole working set survives a snapshot
//! round-trip — a warm-started engine replays every frame on first sight.

use brsmn_core::{
    canonicalize, relabel_inputs, relabel_outputs, Brsmn, Engine, EngineConfig,
    MulticastAssignment, PlanCache, RouteScratch,
};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a valid multicast assignment from a per-output source choice
/// (each output claimed by at most one input — always realizable).
fn assignment_from_choices(n: usize, choices: &[Option<usize>]) -> MulticastAssignment {
    let mut sets = vec![Vec::new(); n];
    for (o, c) in choices.iter().enumerate() {
        if let Some(src) = c {
            sets[*src].push(o);
        }
    }
    MulticastAssignment::from_sets(n, sets).expect("choices form a valid assignment")
}

/// One frame drawn from three load shapes: **dense**, **sparse**, and
/// **α-heavy** (a handful of sources share all outputs).
fn shaped(n: usize) -> impl Strategy<Value = MulticastAssignment> {
    (
        0u8..3,
        vec(option::weighted(0.9, 0..n), n),
        1usize..=4,
        vec(0usize..4, n),
    )
        .prop_map(move |(shape, choices, k, picks)| match shape {
            0 => assignment_from_choices(n, &choices),
            1 => {
                let thinned: Vec<Option<usize>> = choices
                    .iter()
                    .enumerate()
                    .map(|(o, c)| if o % 3 == 0 { *c } else { None })
                    .collect();
                assignment_from_choices(n, &thinned)
            }
            _ => {
                let choices: Vec<Option<usize>> =
                    picks.iter().map(|&i| Some((i % k) * n / 4)).collect();
                assignment_from_choices(n, &choices)
            }
        })
}

/// A uniformly shuffled permutation of `0..n` (Fisher–Yates driven by
/// sampled swap keys).
fn permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    vec(0u64..u64::MAX, n).prop_map(move |keys| {
        let mut idx: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            idx.swap(i, (keys[i] % (i as u64 + 1)) as usize);
        }
        idx
    })
}

/// A frame plus two independent (input, output) relabeling pairs.
fn frame_with_relabelings() -> impl Strategy<
    Value = (
        usize,
        MulticastAssignment,
        (Vec<usize>, Vec<usize>),
        (Vec<usize>, Vec<usize>),
    ),
> {
    prop_oneof![Just(8usize), Just(16), Just(64)].prop_flat_map(|n| {
        (
            Just(n),
            shaped(n),
            (permutation(n), permutation(n)),
            (permutation(n), permutation(n)),
        )
    })
}

/// Applies an (input, output) relabeling pair to a frame.
fn relabel(a: &MulticastAssignment, (ip, op): &(Vec<usize>, Vec<usize>)) -> MulticastAssignment {
    relabel_inputs(&relabel_outputs(a, op), ip)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonicalization is idempotent, and its output permutations really
    /// do map the live frame onto the representative — the defining law
    /// `relabel_inputs(relabel_outputs(a, output_perm), input_perm) == canonical`.
    #[test]
    fn canonicalize_is_idempotent_and_its_perms_reach_the_representative(
        (n, asg, _, _) in frame_with_relabelings(),
    ) {
        let c = canonicalize(&asg);
        prop_assert_eq!(
            relabel(&asg, &(c.input_perm.clone(), c.output_perm.clone())),
            c.canonical.clone()
        );

        let again = canonicalize(&c.canonical);
        prop_assert_eq!(&again.canonical, &c.canonical);
        let identity: Vec<usize> = (0..n).collect();
        prop_assert_eq!(&again.input_perm, &identity);
        prop_assert_eq!(&again.output_perm, &identity);
    }

    /// Any two relabelings of one frame canonicalize to the same
    /// representative and the same fingerprint — the soundness of keying a
    /// cache tier on the canonical form.
    #[test]
    fn relabelings_share_representative_and_fingerprint(
        (_, asg, pair1, pair2) in frame_with_relabelings(),
    ) {
        let (a, b) = (relabel(&asg, &pair1), relabel(&asg, &pair2));
        let (ca, cb) = (canonicalize(&a), canonicalize(&b));
        prop_assert_eq!(&ca.canonical, &cb.canonical);
        prop_assert_eq!(ca.fingerprint(), cb.fingerprint());
        prop_assert_eq!(&ca.canonical, &canonicalize(&asg).canonical);
    }

    /// One member's captured plan serves any other member through the
    /// cache's composed permutation maps, bit-identical to fresh planning
    /// of the live frame.
    #[test]
    fn permuted_replay_is_bit_identical_to_fresh_planning(
        (n, asg, pair1, pair2) in frame_with_relabelings(),
    ) {
        let donor = relabel(&asg, &pair1);
        let live = relabel(&asg, &pair2);

        let net = Brsmn::new(n).unwrap();
        let mut scratch = RouteScratch::new(n).unwrap();
        let (_, plan) = net.route_capture(&donor, &mut scratch).unwrap();

        // Store the donor's plan under the class key, then probe with the
        // live member exactly as the engine does.
        let cache = PlanCache::new(8);
        cache.insert_canonical(&canonicalize(&donor), Arc::new(plan));
        let hit = cache.lookup_canonical(&canonicalize(&live)).unwrap();

        let replayed = net
            .route_replay_permuted(&live, &hit.plan, &hit.input_map, &hit.output_map, &mut scratch)
            .unwrap();
        let fresh = net.route(&live).unwrap();
        prop_assert_eq!(&replayed, &fresh);
        prop_assert!(replayed.realizes(&live));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End to end through the engine: a churn batch (every frame a distinct
    /// relabeling of one shape) misses the exact tier but rides the
    /// canonical tier, with results identical to a cache-less engine — and
    /// after a snapshot round-trip a warm engine replays every frame on
    /// first sight.
    #[test]
    fn churn_batches_ride_the_canonical_tier_and_survive_snapshots(
        (n, asg, _, _) in frame_with_relabelings(),
        shifts in vec(1usize..8, 4..=6),
    ) {
        // Distinct relabelings by rotating ports with coprime-ish shifts;
        // dedup below keeps the accounting exact even when two coincide.
        let mut batch = vec![asg.clone()];
        for (k, s) in shifts.iter().enumerate() {
            let rot: Vec<usize> = (0..n).map(|i| (i + s + k) % n).collect();
            batch.push(relabel(&asg, &(rot.clone(), rot)));
        }

        let plain = Engine::with_config(n, EngineConfig::sequential()).unwrap();
        let cached =
            Engine::with_config(n, EngineConfig::sequential().with_plan_cache(64)).unwrap();
        let want = plain.route_batch(&batch);
        let cold = cached.route_batch(&batch);
        for (a, b) in want.results.iter().zip(&cold.results) {
            prop_assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }

        // One class: exactly one fresh plan (frame 0's, the only exact-tier
        // resident). Every later frame equal to frame 0 hits exactly;
        // everything else — including repeats of canonically-served frames,
        // which are never promoted into the exact tier — hits canonically.
        let repeats_of_first = batch[1..].iter().filter(|f| **f == batch[0]).count() as u64;
        prop_assert_eq!(cold.stats.plan_misses, 1);
        prop_assert_eq!(cold.stats.plan_exact_hits, repeats_of_first);
        prop_assert_eq!(
            cold.stats.plan_canonical_hits,
            batch.len() as u64 - 1 - repeats_of_first,
            "every relabeled frame must hit canonically"
        );
        prop_assert_eq!(
            cold.stats.plan_hits + cold.stats.plan_misses,
            batch.len() as u64
        );

        // Snapshot → fresh cache → warm engine: zero fresh planning, and
        // identical hit behavior on a probe batch.
        let snap = cached.plan_cache().unwrap().snapshot();
        let warmed = Arc::new(PlanCache::new(64));
        let loaded = warmed.load_snapshot(&snap).unwrap();
        prop_assert_eq!(loaded.loaded, 1);

        let mut warm_engine =
            Engine::with_config(n, EngineConfig::sequential().with_plan_cache(64)).unwrap();
        warm_engine.share_plan_cache(Arc::clone(&warmed));
        let warm = warm_engine.route_batch(&batch);
        for (a, b) in want.results.iter().zip(&warm.results) {
            prop_assert_eq!(a.as_ref().unwrap(), b.as_ref().unwrap());
        }
        prop_assert_eq!(warm.stats.plan_misses, 0, "snapshot-warmed engine plans nothing");
        prop_assert_eq!(warm.stats.plan_hits, batch.len() as u64);
        prop_assert_eq!(warm.stats.plan_snapshot_loaded, 1);
    }
}
