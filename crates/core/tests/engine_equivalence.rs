//! Acceptance property: the parallel batched engine is **bit-identical** to
//! the sequential router, for every configuration, message model, network
//! size in {8, 16, 64}, and batches of ≥ 32 random frames.

use brsmn_core::{Brsmn, Engine, EngineConfig, MulticastAssignment};
use proptest::collection::vec;
use proptest::option;
use proptest::prelude::*;

/// Builds a valid multicast assignment from a per-output source choice
/// (each output claimed by at most one input — always realizable).
fn assignment_from_choices(n: usize, choices: &[Option<usize>]) -> MulticastAssignment {
    let mut sets = vec![Vec::new(); n];
    for (o, c) in choices.iter().enumerate() {
        if let Some(src) = c {
            sets[*src].push(o);
        }
    }
    MulticastAssignment::from_sets(n, sets).expect("choices form a valid assignment")
}

/// Strategy: a batch of 32–40 random frames over a shared size n ∈ {8, 16, 64}.
fn batches() -> impl Strategy<Value = (usize, Vec<MulticastAssignment>)> {
    prop_oneof![Just(8usize), Just(16), Just(64)].prop_flat_map(|n| {
        (
            Just(n),
            vec(
                vec(option::weighted(0.8, 0..n), n)
                    .prop_map(move |choices| assignment_from_choices(n, &choices)),
                32..=40,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn parallel_batch_bit_identical_to_sequential((n, batch) in batches()) {
        let net = Brsmn::new(n).unwrap();
        let reference: Vec<_> = batch.iter().map(|asg| net.route(asg).unwrap()).collect();

        // Frame-level parallelism across 4 workers.
        let pooled = Engine::with_config(n, EngineConfig::batch(4)).unwrap();
        let out = pooled.route_batch(&batch);
        prop_assert_eq!(out.results.len(), batch.len());
        for (got, want) in out.results.iter().zip(&reference) {
            prop_assert_eq!(got.as_ref().unwrap(), want);
        }
        prop_assert_eq!(out.stats.frames_ok, batch.len());
        prop_assert_eq!(out.stats.frames_failed, 0);

        // Intra-network parallelism (concurrent halves) per frame.
        let forked = Engine::with_config(n, EngineConfig::single_frame(3)).unwrap();
        for (asg, want) in batch.iter().zip(&reference) {
            let (got, _) = forked.route_one(asg);
            prop_assert_eq!(&got.unwrap(), want);
        }
    }

    #[test]
    fn self_routing_batch_bit_identical((n, batch) in batches()) {
        let net = Brsmn::new(n).unwrap();
        let engine = Engine::with_config(n, EngineConfig::batch(4)).unwrap();
        let out = engine.route_batch_self_routing(&batch);
        for (asg, got) in batch.iter().zip(&out.results) {
            prop_assert_eq!(got.as_ref().unwrap(), &net.route_self_routing(asg).unwrap());
        }
    }

    #[test]
    fn stats_invariants_hold((n, batch) in batches()) {
        let engine = Engine::with_config(n, EngineConfig::batch(2)).unwrap();
        let out = engine.route_batch(&batch);
        let stats = &out.stats;
        prop_assert_eq!(stats.n, n);
        prop_assert_eq!(stats.batch, batch.len());
        prop_assert_eq!(stats.frames_ok + stats.frames_failed, batch.len());

        // Exact per-level block counts: level i holds 2^{i-1} BSNs per frame,
        // and the final stage n/2 switches per frame.
        let m = n.trailing_zeros() as usize;
        prop_assert_eq!(stats.stages.levels.len(), m - 1);
        for (i, level) in stats.stages.levels.iter().enumerate() {
            prop_assert_eq!(level.blocks, (batch.len() << i) as u64);
        }
        prop_assert_eq!(stats.stages.final_switches, (batch.len() * n / 2) as u64);

        // Switch settings: sum over levels of 2^{i-1} · s·log2(s) + n/2 final.
        let mut per_frame = n as u64 / 2;
        for i in 1..m {
            let s = (n >> (i - 1)) as u64;
            per_frame += (1u64 << (i - 1)) * s * (s.trailing_zeros() as u64);
        }
        prop_assert_eq!(stats.stages.switch_settings, per_frame * batch.len() as u64);
        prop_assert!(stats.busy_nanos > 0);
        prop_assert!(stats.wall_nanos > 0);
    }
}
