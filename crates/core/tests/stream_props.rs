//! Property-based tests for the streaming `SEQ` splitter (Section 7.1 /
//! Fig. 10): the O(1)-buffer claim and agreement with the batch `descend`,
//! exercised over random destination sets and adversarial raw tag streams.

use brsmn_core::{seq_for_dests, stream_split, ForwardMode, StreamSplitter};
use brsmn_switch::Tag;
use proptest::prelude::*;

fn arb_tag() -> impl Strategy<Value = Tag> {
    prop_oneof![
        Just(Tag::Zero),
        Just(Tag::One),
        Just(Tag::Alpha),
        Just(Tag::Eps),
    ]
}

fn arb_dests(max_pow: u32) -> impl Strategy<Value = (usize, Vec<usize>)> {
    (2u32..=max_pow).prop_flat_map(|m| {
        let n = 1usize << m;
        proptest::collection::vec(any::<bool>(), n).prop_map(move |mask| {
            let dests: Vec<usize> = (0..n).filter(|&i| mask[i]).collect();
            (n, dests)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The Section 7.1 constant-buffer claim holds for ANY tag stream fed
    /// to the splitter — including ill-formed ones no planner would emit,
    /// the worst case for buffer occupancy: never more than one tag per
    /// branch (2 total) is buffered.
    #[test]
    fn buffer_stays_constant_on_random_streams(tags in proptest::collection::vec(arb_tag(), 0..200)) {
        let mut sp = StreamSplitter::new();
        for &t in &tags {
            let _ = sp.push(t);
        }
        prop_assert!(sp.max_buffered() <= 2, "O(1) claim violated: {}", sp.max_buffered());
    }

    /// Streaming a valid SEQ equals the batch `descend` for whichever of
    /// the three forwarding modes its α-head (or 0/1-head) selects.
    #[test]
    fn streamed_split_equals_batch_descend((n, dests) in arb_dests(8)) {
        let seq = seq_for_dests(n, &dests).unwrap();
        let (up, down, peak) = stream_split(seq.tags());
        prop_assert!(peak <= 2);

        match seq.head() {
            Tag::Alpha => {
                // α-head path: both branches live, remainder alternates.
                let (bup, bdown) = seq.split();
                prop_assert_eq!(&up[..], bup.tags());
                prop_assert_eq!(&down[..], bdown.tags());
            }
            Tag::Zero => {
                let batch = seq.descend(Tag::Zero);
                prop_assert_eq!(&up[..], batch.tags());
                prop_assert!(down.is_empty());
            }
            Tag::One => {
                let batch = seq.descend(Tag::One);
                prop_assert_eq!(&down[..], batch.tags());
                prop_assert!(up.is_empty());
            }
            Tag::Eps => {
                prop_assert!(dests.is_empty());
                prop_assert!(up.iter().all(|&t| t == Tag::Eps));
                prop_assert!(down.is_empty());
            }
        }
    }

    /// The chosen mode matches the head tag, for every head.
    #[test]
    fn mode_follows_head(head in arb_tag(), rest in proptest::collection::vec(arb_tag(), 0..16)) {
        let mut sp = StreamSplitter::new();
        prop_assert!(sp.mode().is_none());
        let first = sp.push(head);
        // The head itself is consumed, never forwarded.
        prop_assert_eq!(first.upper, None);
        prop_assert_eq!(first.lower, None);
        let expect = match head {
            Tag::Zero | Tag::Eps => ForwardMode::UpperOnly,
            Tag::One => ForwardMode::LowerOnly,
            Tag::Alpha => ForwardMode::Both,
        };
        prop_assert_eq!(sp.mode(), Some(expect));
        for &t in &rest {
            let _ = sp.push(t);
        }
        prop_assert_eq!(sp.mode(), Some(expect), "mode must latch");
    }

    /// Conservation on the α-head path: every remainder tag lands in
    /// exactly one branch (even parity up, odd parity down), so the two
    /// streamed outputs partition the remainder.
    #[test]
    fn alpha_head_partitions_the_remainder(rest in proptest::collection::vec(arb_tag(), 0..64)) {
        let mut tags = vec![Tag::Alpha];
        tags.extend_from_slice(&rest);
        let (up, down, _) = stream_split(&tags);
        prop_assert_eq!(up.len(), rest.len().div_ceil(2));
        prop_assert_eq!(down.len(), rest.len() / 2);
        let evens: Vec<Tag> = rest.iter().copied().step_by(2).collect();
        let odds: Vec<Tag> = rest.iter().copied().skip(1).step_by(2).collect();
        prop_assert_eq!(up, evens);
        prop_assert_eq!(down, odds);
    }
}
