//! End-to-end nonblocking verification: arbitrary multicast assignments are
//! realized exactly, by both engines and by the feedback implementation,
//! across network sizes.

use brsmn_core::{Brsmn, FeedbackBrsmn, MulticastAssignment};
use proptest::prelude::*;

/// Strategy: a random valid multicast assignment of size `2^m`, built by
/// assigning each output an independent random source (or none).
fn arb_assignment(max_pow: u32) -> impl Strategy<Value = MulticastAssignment> {
    (1u32..=max_pow)
        .prop_flat_map(|m| {
            let n = 1usize << m;
            proptest::collection::vec(proptest::option::weighted(0.8, 0..n), n)
        })
        .prop_map(|owners| {
            let n = owners.len();
            let mut sets = vec![Vec::new(); n];
            for (output, owner) in owners.into_iter().enumerate() {
                if let Some(src) = owner {
                    sets[src].push(output);
                }
            }
            MulticastAssignment::from_sets(n, sets).expect("by construction disjoint")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline theorem: every multicast assignment is realized exactly
    /// (nonblocking), up to n = 256.
    #[test]
    fn brsmn_realizes_every_assignment(asg in arb_assignment(8)) {
        let net = Brsmn::new(asg.n()).unwrap();
        let result = net.route(&asg).unwrap();
        prop_assert!(result.realizes(&asg));
    }

    /// The self-routing engine — switches see only SEQ tag streams — always
    /// agrees with the semantic reference engine.
    #[test]
    fn self_routing_engine_agrees(asg in arb_assignment(7)) {
        let net = Brsmn::new(asg.n()).unwrap();
        let sem = net.route(&asg).unwrap();
        let slf = net.route_self_routing(&asg).unwrap();
        prop_assert_eq!(&sem, &slf);
        prop_assert!(slf.realizes(&asg));
    }

    /// The feedback implementation (one physical RBN) realizes the same
    /// connections as the unfolded network.
    #[test]
    fn feedback_agrees_with_unfolded(asg in arb_assignment(7)) {
        let n = asg.n();
        let unfolded = Brsmn::new(n).unwrap().route(&asg).unwrap();
        let (fed, stats) = FeedbackBrsmn::new(n).unwrap().route(&asg).unwrap();
        prop_assert_eq!(&unfolded, &fed);
        prop_assert!(fed.realizes(&asg));
        let m = n.trailing_zeros() as u64;
        prop_assert_eq!(stats.passes, 2 * (m - 1) + 1);
    }

    /// Feedback + self-routing: the fully faithful low-cost configuration.
    #[test]
    fn feedback_self_routing(asg in arb_assignment(6)) {
        let (r, _) = FeedbackBrsmn::new(asg.n()).unwrap().route_self_routing(&asg).unwrap();
        prop_assert!(r.realizes(&asg));
    }

    /// Permutation assignments (the classical special case) route exactly.
    #[test]
    fn permutations_route(m in 1u32..=8, seed in proptest::collection::vec(any::<u32>(), 256)) {
        let n = 1usize << m;
        // Fisher–Yates from the seed.
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = seed[i % seed.len()] as usize % (i + 1);
            perm.swap(i, j);
        }
        let asg = MulticastAssignment::from_permutation(
            &perm.iter().map(|&o| Some(o)).collect::<Vec<_>>()
        ).unwrap();
        let net = Brsmn::new(n).unwrap();
        let r = net.route(&asg).unwrap();
        prop_assert!(r.realizes(&asg));
        let r2 = net.route_self_routing(&asg).unwrap();
        prop_assert_eq!(r, r2);
    }
}

/// Exhaustive check at n = 4: every function from outputs to
/// sources-or-nobody (5^4 = 625 assignments), all realized by all engines.
#[test]
fn exhaustive_n4_all_assignments() {
    let n = 4usize;
    let net = Brsmn::new(n).unwrap();
    let fed = FeedbackBrsmn::new(n).unwrap();
    for code in 0..5usize.pow(4) {
        let mut sets = vec![Vec::new(); n];
        let mut c = code;
        for output in 0..n {
            let owner = c % 5;
            c /= 5;
            if owner < 4 {
                sets[owner].push(output);
            }
        }
        let asg = MulticastAssignment::from_sets(n, sets).unwrap();
        let sem = net.route(&asg).unwrap_or_else(|e| panic!("{asg}: {e}"));
        assert!(sem.realizes(&asg), "{asg}");
        let slf = net.route_self_routing(&asg).unwrap();
        assert_eq!(sem, slf, "{asg}");
        let (fb, _) = fed.route(&asg).unwrap();
        assert_eq!(sem, fb, "{asg}");
    }
}

/// Exhaustive check at n = 8 over single-source multicasts: every input ×
/// every non-empty destination subset (8 × 255).
#[test]
fn exhaustive_n8_single_source() {
    let n = 8usize;
    let net = Brsmn::new(n).unwrap();
    for src in 0..n {
        for mask in 1u32..256 {
            let dests: Vec<usize> = (0..n).filter(|&o| mask >> o & 1 == 1).collect();
            let mut sets = vec![Vec::new(); n];
            sets[src] = dests;
            let asg = MulticastAssignment::from_sets(n, sets).unwrap();
            let r = net.route(&asg).unwrap();
            assert!(r.realizes(&asg), "src={src} mask={mask:#010b}");
        }
    }
}

/// Stress: a dense random multicast assignment at n = 1024 through all three
/// configurations.
#[test]
fn large_network_smoke() {
    let n = 1024usize;
    let mut sets = vec![Vec::new(); n];
    for output in 0..n {
        // Deterministic hash-based owner; ~87% of outputs covered.
        let h = output.wrapping_mul(0x9E3779B97F4A7C15u64 as usize) >> 7;
        if h % 8 != 0 {
            sets[h % n].push(output);
        }
    }
    let asg = MulticastAssignment::from_sets(n, sets).unwrap();
    let net = Brsmn::new(n).unwrap();
    let sem = net.route(&asg).unwrap();
    assert!(sem.realizes(&asg));
    let slf = net.route_self_routing(&asg).unwrap();
    assert_eq!(sem, slf);
    let (fb, stats) = FeedbackBrsmn::new(n).unwrap().route(&asg).unwrap();
    assert_eq!(sem, fb);
    assert_eq!(stats.passes, 19);
    assert_eq!(stats.physical_switches, 512 * 10);
}
