//! Reverse banyan networks (RBNs) and the distributed self-routing machinery
//! built on them — Sections 4–6 of Yang & Wang, *"A New Self-Routing
//! Multicast Network"*.
//!
//! An `n × n` RBN is recursively two `n/2 × n/2` RBNs followed by an `n × n`
//! merging network (one perfect-shuffle stage of 2×2 switches). This crate
//! provides:
//!
//! * [`sequence`] — circular compact sequences `C^n_{s,l;β,γ}` (Eq. 5), the
//!   combinatorial objects the whole construction manipulates;
//! * [`setting`] — compact switch settings `W^{n/2}_{…}` and the parallel
//!   setting routines of Table 5;
//! * [`fabric`] — the executable switch fabric ([`RbnSettings`]) with
//!   payload-splitting broadcast semantics;
//! * [`plan`] — the distributed forward/backward algorithms of Tables 3, 4
//!   and 6 (bit sorting, scattering, ε-dividing) as array-based planners;
//! * [`bitplan`] — the same three sweeps word-packed: tags in two `u64` bit
//!   planes, forward values by popcount, settings written into
//!   caller-provided buffers with zero steady-state allocation;
//! * [`distributed`] — the same algorithms as an event-driven
//!   message-passing execution over the Fig. 8 tree (cross-validates the
//!   planners and measures parallel rounds);
//! * [`network`] — one-call façades: [`BitSortingRbn`], [`ScatterRbn`],
//!   [`QuasisortRbn`].
//!
//! # Example: Theorem 1 in action
//!
//! ```
//! use brsmn_rbn::BitSortingRbn;
//! use brsmn_switch::{Line, Tag};
//!
//! let rbn = BitSortingRbn::new(8).unwrap();
//! let lines: Vec<Line<&str>> = "10110010".chars().map(|c| {
//!     Line::with(if c == '1' { Tag::One } else { Tag::Zero }, "msg")
//! }).collect();
//! let out = rbn.sort(lines, 4).unwrap(); // s = n/2: ascending bit sort
//! let tags: String = out.iter().map(|l| l.tag.to_string()).collect();
//! assert_eq!(tags, "00001111");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batchplan;
pub mod bitplan;
pub mod distributed;
pub mod fabric;
pub mod network;
pub mod packed;
pub mod par;
pub mod plan;
pub mod profile;
pub mod sequence;
pub mod setting;

pub use batchplan::{BatchSweep, MAX_BATCH_FRAMES};
pub use bitplan::{BitVec, SweepScratch, TagPlane, TagVec, LANES};
pub use distributed::{
    distributed_bitsort, distributed_eps_divide, distributed_scatter, SweepStats,
};
pub use fabric::{clone_split, RbnSettings, RbnWiring};
pub use network::{BitSortingRbn, QuasisortRbn, RbnError, ScatterRbn};
pub use packed::{setting_code, setting_from_code, PackedSettings};
pub use plan::{
    eps_divide, plan_bitsort, plan_quasisort, plan_scatter, BitsortPlan, DomType, EpsDividePlan,
    PlanError, ScatterNode, ScatterPlan,
};
pub use profile::PlanOpProfile;
pub use sequence::{compact_sequence, is_compact_at, recognize_compact, Compact};
pub use setting::{
    binary_compact_setting, binary_compact_setting_into, trinary_compact_setting,
    trinary_compact_setting_into,
};
