//! Structure-of-arrays batch planning: the Tables 4 + 6 sweeps advanced for
//! up to [`MAX_BATCH_FRAMES`] same-size frames in lockstep.
//!
//! A batch of assignments at the same `n` runs the *identical* plane-sweep
//! schedule — the tree levels, node ranges and word boundaries of every
//! forward query are functions of `n` alone, not of the tags. That makes a
//! structure-of-arrays transpose natural: [`BatchSweep`] stores the two tag
//! bit planes of `F` frames **word-major, frame-minor** (`lo[w·F + f]`), so
//! one sweep iteration touches the same word row of every frame as one
//! contiguous run. The per-node backward state (`s` values and ε₀ quotas)
//! is likewise node-major, frame-minor, so the inner loop of every tree
//! level walks contiguous memory across frames.
//!
//! Each frame still gets its own switch settings: the backward waves write
//! through [`crate::setting::binary_compact_setting_into`] into per-frame
//! [`RbnSettings`] tables, so the output of the lockstep planner is
//! **bit-for-bit** the output of running [`crate::bitplan::SweepScratch`]
//! on each frame alone — the equivalence suites here and in `brsmn-core`
//! pin that.
//!
//! Error semantics: the quasisort constraint checks (no α, half-capacity)
//! report the **first offending frame**; the caller is expected to fall
//! back to the scalar path for the whole batch so error values stay
//! byte-identical to single-frame planning.

use crate::bitplan::lane_tail_mask;
use crate::fabric::RbnSettings;
use crate::plan::PlanError;
use crate::setting::binary_compact_setting_into;
use brsmn_switch::tag::TagCounts;
use brsmn_switch::{SwitchSetting, Tag};
use brsmn_topology::log2_exact;

/// Maximum number of frames one [`BatchSweep`] advances in lockstep. With
/// 64 frames a word row of one plane is 512 bytes — eight cache lines that
/// every query of the same tree node walks contiguously.
pub const MAX_BATCH_FRAMES: usize = 64;

/// Reusable SoA state for lockstep batch planning: the packed tag planes of
/// all frames, the derived per-frame rank rows, and the node-major backward
/// buffers. Size once ([`BatchSweep::begin`] at the largest `frames × len`
/// grows the buffers), then plan any number of batches with zero heap
/// allocation — the `brsmn-bench` `alloc-count` test pins this end to end.
#[derive(Debug, Clone, Default)]
pub struct BatchSweep {
    frames: usize,
    len: usize,
    nwords: usize,
    /// Tag planes, word-major frame-minor: `lo[w * frames + f]`.
    lo: Vec<u64>,
    hi: Vec<u64>,
    /// Derived single-tag planes in the same layout.
    alpha: Vec<u64>,
    eps: Vec<u64>,
    ones: Vec<u64>,
    /// Word-granular rank rows, `(nwords + 1) × frames`: `rank[w·F + f]` =
    /// set bits of frame `f` in words `[0, w)`; row `nwords` holds totals.
    alpha_rank: Vec<u32>,
    eps_rank: Vec<u32>,
    ones_rank: Vec<u32>,
    /// Backward-wave state, node-major frame-minor: `cur[b * frames + f]`.
    cur: Vec<u32>,
    next: Vec<u32>,
    cur_q: Vec<u32>,
    next_q: Vec<u32>,
}

impl BatchSweep {
    /// An empty batch scratch; buffers grow on first use.
    pub fn new() -> Self {
        BatchSweep::default()
    }

    /// Number of frames loaded in the current batch.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Tag count per frame of the current batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no batch has been started.
    pub fn is_empty(&self) -> bool {
        self.frames == 0 || self.len == 0
    }

    /// Starts a batch of `frames` frames of `len` tags each (`len` a power
    /// of two, `frames ≤ MAX_BATCH_FRAMES`). Grows the buffers if this
    /// shape is larger than any seen before; otherwise allocation-free.
    /// Every frame in `0..frames` must then be loaded with
    /// [`BatchSweep::load_frame`] before planning.
    pub fn begin(&mut self, frames: usize, len: usize) {
        assert!(frames >= 1 && frames <= MAX_BATCH_FRAMES);
        assert!(len.is_power_of_two());
        self.frames = frames;
        self.len = len;
        self.nwords = len.div_ceil(64);
        let plane = self.nwords * frames;
        let rank = (self.nwords + 1) * frames;
        if self.lo.len() < plane {
            self.lo.resize(plane, 0);
            self.hi.resize(plane, 0);
            self.alpha.resize(plane, 0);
            self.eps.resize(plane, 0);
            self.ones.resize(plane, 0);
        }
        if self.alpha_rank.len() < rank {
            self.alpha_rank.resize(rank, 0);
            self.eps_rank.resize(rank, 0);
            self.ones_rank.resize(rank, 0);
        }
        let nodes = len * frames;
        if self.cur.len() < nodes {
            self.cur.resize(nodes, 0);
            self.next.resize(nodes, 0);
            self.cur_q.resize(nodes, 0);
            self.next_q.resize(nodes, 0);
        }
    }

    /// Loads frame `f`'s tags into its plane column (strided writes; the
    /// sweeps that follow read word rows contiguously).
    pub fn load_frame<F: FnMut(usize) -> Tag>(&mut self, f: usize, mut tag: F) {
        debug_assert!(f < self.frames);
        let fr = self.frames;
        let (mut alo, mut ahi) = (0u64, 0u64);
        for i in 0..self.len {
            let (blo, bhi) = match tag(i) {
                Tag::Zero => (0, 0),
                Tag::One => (1, 0),
                Tag::Alpha => (0, 1),
                Tag::Eps => (1, 1),
            };
            let sh = i & 63;
            alo |= (blo as u64) << sh;
            ahi |= (bhi as u64) << sh;
            if sh == 63 {
                self.lo[(i >> 6) * fr + f] = alo;
                self.hi[(i >> 6) * fr + f] = ahi;
                (alo, ahi) = (0, 0);
            }
        }
        if self.len & 63 != 0 {
            self.lo[(self.len >> 6) * fr + f] = alo;
            self.hi[(self.len >> 6) * fr + f] = ahi;
        }
    }

    /// Tag at position `i` of frame `f`.
    #[inline]
    pub fn get(&self, f: usize, i: usize) -> Tag {
        debug_assert!(f < self.frames && i < self.len);
        let idx = (i >> 6) * self.frames + f;
        let sh = i & 63;
        match (self.lo[idx] >> sh & 1, self.hi[idx] >> sh & 1) {
            (0, 0) => Tag::Zero,
            (1, 0) => Tag::One,
            (0, 1) => Tag::Alpha,
            _ => Tag::Eps,
        }
    }

    /// Tallies all four tags of every loaded frame in one word-major pass
    /// (the inner frame loop is contiguous). `out[f]` receives frame `f`'s
    /// counts; `out` must hold at least `frames` entries.
    pub fn counts_all(&self, out: &mut [TagCounts]) {
        let fr = self.frames;
        for c in out[..fr].iter_mut() {
            *c = TagCounts::default();
        }
        for w in 0..self.nwords {
            let m = lane_tail_mask(self.len, w);
            let row = w * fr;
            for f in 0..fr {
                let (lo, hi) = (self.lo[row + f], self.hi[row + f]);
                out[f].n0 += ((!lo & !hi) & m).count_ones() as usize;
                out[f].n1 += ((lo & !hi) & m).count_ones() as usize;
                out[f].na += ((!lo & hi) & m).count_ones() as usize;
                out[f].ne += ((lo & hi) & m).count_ones() as usize;
            }
        }
    }

    /// Position of the first α tag of frame `f`, if any — the quasisort
    /// precondition check, matching [`crate::bitplan::TagVec::first_in_plane`].
    pub fn first_alpha(&self, f: usize) -> Option<usize> {
        let fr = self.frames;
        for w in 0..self.nwords {
            let (lo, hi) = (self.lo[w * fr + f], self.hi[w * fr + f]);
            let x = (!lo & hi) & lane_tail_mask(self.len, w);
            if x != 0 {
                return Some((w << 6) + x.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Derives one single-tag plane (and its rank rows) for all frames in a
    /// word-major pass: the inner frame loop is a contiguous run of boolean
    /// ops, masks and popcounts that the compiler autovectorizes.
    fn derive_plane(plane: u8, len: usize, nwords: usize, fr: usize, lo: &[u64], hi: &[u64], out: &mut [u64], rank: &mut [u32]) {
        rank[..fr].fill(0);
        for w in 0..nwords {
            let m = lane_tail_mask(len, w);
            let row = w * fr;
            for f in 0..fr {
                let (l, h) = (lo[row + f], hi[row + f]);
                let x = match plane {
                    0 => (l & !h) & m,  // ones
                    1 => (!l & h) & m,  // alpha
                    _ => (l & h) & m,   // eps
                };
                out[row + f] = x;
                rank[row + fr + f] = rank[row + f] + x.count_ones();
            }
        }
    }

    /// Rank of frame `f` at bit `i` in the plane `(plane, rank)` pair.
    #[inline]
    fn plane_rank(plane: &[u64], rank: &[u32], fr: usize, f: usize, i: usize) -> usize {
        let (w, r) = (i >> 6, i & 63);
        let base = rank[w * fr + f] as usize;
        if r == 0 {
            base
        } else {
            base + (plane[w * fr + f] & ((1u64 << r) - 1)).count_ones() as usize
        }
    }

    /// `nα − nε` over the leaves of node `(j, b)` for frame `f` — the signed
    /// Table 4 forward value, as in [`crate::bitplan::SweepScratch`].
    #[inline]
    fn scatter_value(&self, f: usize, j: usize, b: usize) -> isize {
        let fr = self.frames;
        let (lo, hi) = (b << j, (b + 1) << j);
        let na = Self::plane_rank(&self.alpha, &self.alpha_rank, fr, f, hi)
            - Self::plane_rank(&self.alpha, &self.alpha_rank, fr, f, lo);
        let ne = Self::plane_rank(&self.eps, &self.eps_rank, fr, f, hi)
            - Self::plane_rank(&self.eps, &self.eps_rank, fr, f, lo);
        na as isize - ne as isize
    }

    /// The `(l, dominant-is-α)` forward pair of node `(j, b)` for frame `f`,
    /// ties resolved down the upper-child spine exactly like the scalar
    /// sweep.
    fn scatter_node(&self, f: usize, j: usize, b: usize) -> (usize, bool) {
        let v = self.scatter_value(f, j, b);
        if v > 0 {
            return (v as usize, true);
        }
        if v < 0 {
            return (v.unsigned_abs(), false);
        }
        let (mut jj, mut bb) = (j, b);
        while jj > 0 {
            jj -= 1;
            bb <<= 1;
            let v = self.scatter_value(f, jj, bb);
            if v > 0 {
                return (0, true);
            }
            if v < 0 {
                return (0, false);
            }
        }
        (0, false)
    }

    /// Lockstep Table 4: plans a scatter with target start `s_target` for
    /// every loaded frame, writing frame `f`'s settings into `settings[f]`
    /// (same `base` block offset for all frames). Bit-for-bit equal to
    /// running [`crate::bitplan::SweepScratch::plan_scatter`] per frame.
    pub fn plan_scatter_all(&mut self, s_target: usize, base: usize, settings: &mut [RbnSettings]) {
        let (sz, fr) = (self.len, self.frames);
        let m = log2_exact(sz) as usize;
        assert!(s_target < sz);
        assert!(settings.len() >= fr);
        Self::derive_plane(1, sz, self.nwords, fr, &self.lo, &self.hi, &mut self.alpha, &mut self.alpha_rank);
        Self::derive_plane(2, sz, self.nwords, fr, &self.lo, &self.hi, &mut self.eps, &mut self.eps_rank);
        self.cur[..fr].fill(s_target as u32);
        for j in (1..=m).rev() {
            let half = 1usize << (j - 1);
            let n_prime = 1usize << j;
            for b in 0..(sz >> j) {
                for (f, table) in settings[..fr].iter_mut().enumerate() {
                    let s_node = self.cur[b * fr + f] as usize;
                    let (l_node, _) = self.scatter_node(f, j, b);
                    let (l0, a0) = self.scatter_node(f, j - 1, 2 * b);
                    let (l1, a1) = self.scatter_node(f, j - 1, 2 * b + 1);
                    let slice = table.block_mut(j - 1, (base >> j) + b);
                    let (s0, s1);
                    if a0 == a1 {
                        // ε/α-addition: Lemma 1.
                        s0 = s_node % half;
                        s1 = (s_node + l0) % half;
                        let bset = ((s_node + l0) / half) % 2;
                        let (b_val, b_comp) = if bset == 1 {
                            (SwitchSetting::Crossing, SwitchSetting::Parallel)
                        } else {
                            (SwitchSetting::Parallel, SwitchSetting::Crossing)
                        };
                        binary_compact_setting_into(slice, 0, s1, b_comp, b_val);
                    } else {
                        // ε/α-elimination: Lemmas 2–5.
                        let bcast = if a0 {
                            SwitchSetting::UpperBroadcast
                        } else {
                            SwitchSetting::LowerBroadcast
                        };
                        let (s_tmp, l_tmp, ucast);
                        if l0 >= l1 {
                            s0 = s_node % half;
                            s1 = (s_node + l_node) % half;
                            s_tmp = s1;
                            l_tmp = l1;
                            ucast = SwitchSetting::Parallel;
                        } else {
                            s0 = (s_node + l_node) % half;
                            s1 = s_node % half;
                            s_tmp = s0;
                            l_tmp = l0;
                            ucast = SwitchSetting::Crossing;
                        }
                        let ucomp = ucast.complement();
                        if s_node + l_node < half {
                            binary_compact_setting_into(slice, s_tmp, l_tmp, ucast, bcast);
                        } else if s_node < half {
                            crate::setting::trinary_compact_setting_into(
                                slice, s_tmp, l_tmp, ucomp, bcast, ucast,
                            );
                        } else if s_node + l_node < n_prime {
                            binary_compact_setting_into(slice, s_tmp, l_tmp, ucomp, bcast);
                        } else {
                            crate::setting::trinary_compact_setting_into(
                                slice, s_tmp, l_tmp, ucast, bcast, ucomp,
                            );
                        }
                    }
                    self.next[(2 * b) * fr + f] = s0 as u32;
                    self.next[(2 * b + 1) * fr + f] = s1 as u32;
                }
            }
            std::mem::swap(&mut self.cur, &mut self.next);
        }
    }

    /// Lockstep fused Table 6 + Table 3: the complete quasisort plan for
    /// every loaded frame in a single backward wave per tree level, using
    /// the same `γ(j,b) = n₁ + (n_ε − ε₀)` identity as
    /// [`crate::bitplan::SweepScratch::plan_quasisort_fused`].
    ///
    /// On a constraint violation returns `Err((frame, error))` for the
    /// first offending frame **before any settings are written**, so the
    /// caller can fall back to per-frame planning with untouched state.
    pub fn plan_quasisort_fused_all(
        &mut self,
        base: usize,
        settings: &mut [RbnSettings],
    ) -> Result<(), (usize, PlanError)> {
        let (sz, fr) = (self.len, self.frames);
        let m = log2_exact(sz) as usize;
        assert!(settings.len() >= fr);
        Self::derive_plane(0, sz, self.nwords, fr, &self.lo, &self.hi, &mut self.ones, &mut self.ones_rank);
        Self::derive_plane(2, sz, self.nwords, fr, &self.lo, &self.hi, &mut self.eps, &mut self.eps_rank);
        for f in 0..fr {
            if let Some(position) = self.first_alpha(f) {
                return Err((f, PlanError::AlphaInQuasisort { position }));
            }
            let n1 = self.ones_rank[self.nwords * fr + f] as usize;
            let ne = self.eps_rank[self.nwords * fr + f] as usize;
            let n0 = sz - n1 - ne;
            if n0 > sz / 2 || n1 > sz / 2 {
                return Err((
                    f,
                    PlanError::HalfOverflow {
                        n0,
                        n1,
                        half: sz / 2,
                    },
                ));
            }
            self.cur[f] = (sz / 2) as u32;
            self.cur_q[f] = (ne - (sz / 2 - n1)) as u32;
        }
        for j in (1..=m).rev() {
            let half = 1usize << (j - 1);
            for b in 0..(sz >> j) {
                let (u_lo, u_hi) = (2 * b * half, (2 * b + 1) * half);
                for (f, table) in settings[..fr].iter_mut().enumerate() {
                    let s_node = self.cur[b * fr + f] as usize;
                    let e0 = self.cur_q[b * fr + f] as usize;
                    let upper_eps = Self::plane_rank(&self.eps, &self.eps_rank, fr, f, u_hi)
                        - Self::plane_rank(&self.eps, &self.eps_rank, fr, f, u_lo);
                    let u_e0 = e0.min(upper_eps);
                    let l0 = Self::plane_rank(&self.ones, &self.ones_rank, fr, f, u_hi)
                        - Self::plane_rank(&self.ones, &self.ones_rank, fr, f, u_lo)
                        + (upper_eps - u_e0);
                    let s0 = s_node % half;
                    let s1 = (s_node + l0) % half;
                    let bset = ((s_node + l0) / half) % 2;
                    let (b_val, b_comp) = if bset == 1 {
                        (SwitchSetting::Crossing, SwitchSetting::Parallel)
                    } else {
                        (SwitchSetting::Parallel, SwitchSetting::Crossing)
                    };
                    binary_compact_setting_into(
                        table.block_mut(j - 1, (base >> j) + b),
                        0,
                        s1,
                        b_comp,
                        b_val,
                    );
                    self.next[(2 * b) * fr + f] = s0 as u32;
                    self.next[(2 * b + 1) * fr + f] = s1 as u32;
                    self.next_q[(2 * b) * fr + f] = u_e0 as u32;
                    self.next_q[(2 * b + 1) * fr + f] = (e0 - u_e0) as u32;
                }
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            std::mem::swap(&mut self.cur_q, &mut self.next_q);
        }
        Ok(())
    }

    /// Heap bytes currently reserved by all SoA buffers.
    pub fn footprint_bytes(&self) -> usize {
        (self.lo.capacity()
            + self.hi.capacity()
            + self.alpha.capacity()
            + self.eps.capacity()
            + self.ones.capacity())
            * 8
            + (self.alpha_rank.capacity()
                + self.eps_rank.capacity()
                + self.ones_rank.capacity()
                + self.cur.capacity()
                + self.next.capacity()
                + self.cur_q.capacity()
                + self.next_q.capacity())
                * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitplan::SweepScratch;

    fn tag_of(code: u64) -> Tag {
        match code & 3 {
            0 => Tag::Zero,
            1 => Tag::One,
            2 => Tag::Alpha,
            _ => Tag::Eps,
        }
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn batch_scatter_matches_per_frame_sweep() {
        let mut batch = BatchSweep::new();
        let mut scratch = SweepScratch::new();
        let mut state = 0xA076_1D64_78BD_642Fu64;
        for n in [4usize, 8, 64, 256] {
            for frames in [1usize, 3, 7, 64] {
                let tags: Vec<Vec<Tag>> = (0..frames)
                    .map(|_| (0..n).map(|_| tag_of(xorshift(&mut state))).collect())
                    .collect();
                batch.begin(frames, n);
                for (f, t) in tags.iter().enumerate() {
                    batch.load_frame(f, |i| t[i]);
                }
                let mut got: Vec<RbnSettings> =
                    (0..frames).map(|_| RbnSettings::identity(n)).collect();
                batch.plan_scatter_all(0, 0, &mut got);
                for (f, t) in tags.iter().enumerate() {
                    let mut want = RbnSettings::identity(n);
                    scratch.set_tags(n, |i| t[i]);
                    scratch.plan_scatter(0, 0, &mut want);
                    assert_eq!(got[f], want, "n={n} frames={frames} f={f}");
                }
            }
        }
    }

    #[test]
    fn batch_quasisort_matches_per_frame_sweep() {
        let mut batch = BatchSweep::new();
        let mut scratch = SweepScratch::new();
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for n in [4usize, 8, 64, 256] {
            for frames in [1usize, 2, 5, 64] {
                // ε-heavy draw so the half constraints usually hold; retry
                // whole batches until every frame is feasible.
                let tags: Vec<Vec<Tag>> = loop {
                    let cand: Vec<Vec<Tag>> = (0..frames)
                        .map(|_| {
                            (0..n)
                                .map(|_| match xorshift(&mut state) % 4 {
                                    0 => Tag::Zero,
                                    1 => Tag::One,
                                    _ => Tag::Eps,
                                })
                                .collect()
                        })
                        .collect();
                    let ok = cand.iter().all(|t| {
                        let mut s = SweepScratch::new();
                        s.set_tags(n, |i| t[i]);
                        s.eps_divide().is_ok()
                    });
                    if ok {
                        break cand;
                    }
                };
                batch.begin(frames, n);
                for (f, t) in tags.iter().enumerate() {
                    batch.load_frame(f, |i| t[i]);
                }
                let mut got: Vec<RbnSettings> =
                    (0..frames).map(|_| RbnSettings::identity(n)).collect();
                batch.plan_quasisort_fused_all(0, &mut got).unwrap();
                for (f, t) in tags.iter().enumerate() {
                    let mut want = RbnSettings::identity(n);
                    scratch.set_tags(n, |i| t[i]);
                    scratch.plan_quasisort_fused(0, &mut want).unwrap();
                    assert_eq!(got[f], want, "n={n} frames={frames} f={f}");
                }
            }
        }
    }

    #[test]
    fn batch_quasisort_reports_first_offending_frame() {
        let mut batch = BatchSweep::new();
        batch.begin(3, 4);
        use Tag::*;
        let frames = [
            [One, Eps, Zero, Eps],   // fine
            [One, One, One, Eps],    // half overflow (n1 = 3)
            [Alpha, Eps, Zero, Eps], // alpha — later frame, must not win
        ];
        for (f, t) in frames.iter().enumerate() {
            batch.load_frame(f, |i| t[i]);
        }
        let mut settings: Vec<RbnSettings> = (0..3).map(|_| RbnSettings::identity(4)).collect();
        assert_eq!(
            batch.plan_quasisort_fused_all(0, &mut settings),
            Err((1, PlanError::HalfOverflow { n0: 0, n1: 3, half: 2 }))
        );
    }

    #[test]
    fn batch_counts_and_first_alpha_match_scalar() {
        let mut batch = BatchSweep::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for n in [2usize, 8, 64, 128] {
            let frames = 9;
            let tags: Vec<Vec<Tag>> = (0..frames)
                .map(|_| (0..n).map(|_| tag_of(xorshift(&mut state))).collect())
                .collect();
            batch.begin(frames, n);
            for (f, t) in tags.iter().enumerate() {
                batch.load_frame(f, |i| t[i]);
            }
            let mut counts = vec![TagCounts::default(); frames];
            batch.counts_all(&mut counts);
            for (f, t) in tags.iter().enumerate() {
                assert_eq!(counts[f], TagCounts::of(t), "n={n} f={f}");
                assert_eq!(
                    batch.first_alpha(f),
                    t.iter().position(|&x| x == Tag::Alpha),
                    "n={n} f={f}"
                );
                for (i, &x) in t.iter().enumerate() {
                    assert_eq!(batch.get(f, i), x, "n={n} f={f} i={i}");
                }
            }
        }
    }

    #[test]
    fn batch_writes_at_block_offsets() {
        // Two frames of a 4-wide block planned at base 4 of an 8-wide table.
        let mut batch = BatchSweep::new();
        let mut scratch = SweepScratch::new();
        use Tag::*;
        let frames = [[Alpha, Eps, Zero, One], [Eps, Alpha, One, Zero]];
        batch.begin(2, 4);
        for (f, t) in frames.iter().enumerate() {
            batch.load_frame(f, |i| t[i]);
        }
        let mut got: Vec<RbnSettings> = (0..2).map(|_| RbnSettings::identity(8)).collect();
        batch.plan_scatter_all(0, 4, &mut got);
        for (f, t) in frames.iter().enumerate() {
            let mut want = RbnSettings::identity(8);
            scratch.set_tags(4, |i| t[i]);
            scratch.plan_scatter(0, 4, &mut want);
            assert_eq!(got[f], want, "f={f}");
        }
    }
}
