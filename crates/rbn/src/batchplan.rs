//! Structure-of-arrays batch planning: the Tables 4 + 6 sweeps advanced for
//! up to [`MAX_BATCH_FRAMES`] same-size frames in lockstep.
//!
//! A batch of assignments at the same `n` runs the *identical* plane-sweep
//! schedule — the tree levels, node ranges and word boundaries of every
//! forward query are functions of `n` alone, not of the tags. That makes a
//! structure-of-arrays transpose natural: [`BatchSweep`] stores the two tag
//! bit planes of `F` frames **frame-major** (`lo[f·W + w]`, one contiguous
//! word column per frame), and each backward-wave level runs its node loop
//! per frame: frame `f`'s pass reads its own contiguous plane column,
//! carries its `s` values / ε₀ quotas / (α, ε) counts through contiguous
//! per-frame node rows (`cur[f·n + b]`), and streams its switch settings
//! into a single [`RbnSettings`] table — instead of interleaving 64 tables
//! one node at a time.
//!
//! Each frame still gets its own switch settings: the backward waves write
//! through [`crate::setting::binary_compact_setting_into`] into per-frame
//! [`RbnSettings`] tables, so the output of the lockstep planner is
//! **bit-for-bit** the output of running [`crate::bitplan::SweepScratch`]
//! on each frame alone — the equivalence suites here and in `brsmn-core`
//! pin that.
//!
//! Error semantics: the quasisort constraint checks (no α, half-capacity)
//! report the **first offending frame**; the caller is expected to fall
//! back to the scalar path for the whole batch so error values stay
//! byte-identical to single-frame planning.
//!
//! Like the scalar [`SweepScratch`](crate::bitplan::SweepScratch), the
//! sweeps here are **carried-rank**: every forward query is an aligned
//! segment count answered by strided popcounts over the plane columns (no
//! per-frame rank rows are built any more), the scatter wave carries each
//! node's own (α, ε) counts down from its parent, and empty subtrees
//! short-circuit their tie walks. A [`PlanOpProfile`] tallies the ops (see
//! [`crate::profile`]); drain it with [`BatchSweep::take_profile`].

use crate::bitplan::lane_tail_mask;
use crate::fabric::RbnSettings;
use crate::plan::PlanError;
use crate::profile::{PlanOpProfile, ProfClock};
use crate::setting::binary_compact_setting_into;
use brsmn_switch::tag::TagCounts;
use brsmn_switch::{SwitchSetting, Tag};
use brsmn_topology::log2_exact;

/// Maximum number of frames one [`BatchSweep`] advances in lockstep. The
/// cap bounds the SoA buffer growth (planes, carried node rows) to one
/// known shape per `n`.
pub const MAX_BATCH_FRAMES: usize = 64;

/// Reusable SoA state for lockstep batch planning: the packed tag planes of
/// all frames, the derived single-tag planes, and the node-major backward
/// buffers. Size once ([`BatchSweep::begin`] at the largest `frames × len`
/// grows the buffers), then plan any number of batches with zero heap
/// allocation — the `brsmn-bench` `alloc-count` test pins this end to end.
#[derive(Debug, Clone, Default)]
pub struct BatchSweep {
    frames: usize,
    len: usize,
    nwords: usize,
    /// Tag planes, frame-major: `lo[f * nwords + w]`.
    lo: Vec<u64>,
    hi: Vec<u64>,
    /// Derived single-tag planes in the same layout.
    alpha: Vec<u64>,
    eps: Vec<u64>,
    ones: Vec<u64>,
    /// Per-frame plane totals (one `u32` per frame), produced as a side
    /// effect of plane derivation — the only remnant of the old
    /// `(nwords + 1) × frames` rank rows, which the carried-rank sweeps no
    /// longer need.
    alpha_tot: Vec<u32>,
    eps_tot: Vec<u32>,
    ones_tot: Vec<u32>,
    /// Backward-wave state, frame-major: `cur[f * len + b]`.
    cur: Vec<u32>,
    next: Vec<u32>,
    cur_q: Vec<u32>,
    next_q: Vec<u32>,
    /// Carried per-node (α, ε) counts of the live scatter level, same
    /// layout as `cur`.
    cur_a: Vec<u32>,
    next_a: Vec<u32>,
    cur_e: Vec<u32>,
    next_e: Vec<u32>,
    profile: PlanOpProfile,
}

impl BatchSweep {
    /// An empty batch scratch; buffers grow on first use.
    pub fn new() -> Self {
        BatchSweep::default()
    }

    /// Number of frames loaded in the current batch.
    pub fn frames(&self) -> usize {
        self.frames
    }

    /// Tag count per frame of the current batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no batch has been started.
    pub fn is_empty(&self) -> bool {
        self.frames == 0 || self.len == 0
    }

    /// Starts a batch of `frames` frames of `len` tags each (`len` a power
    /// of two, `frames ≤ MAX_BATCH_FRAMES`). Grows the buffers if this
    /// shape is larger than any seen before; otherwise allocation-free.
    /// Every frame in `0..frames` must then be loaded with
    /// [`BatchSweep::load_frame`] before planning.
    pub fn begin(&mut self, frames: usize, len: usize) {
        assert!(frames >= 1 && frames <= MAX_BATCH_FRAMES);
        assert!(len.is_power_of_two());
        self.frames = frames;
        self.len = len;
        self.nwords = len.div_ceil(64);
        let plane = self.nwords * frames;
        if self.lo.len() < plane {
            self.lo.resize(plane, 0);
            self.hi.resize(plane, 0);
            self.alpha.resize(plane, 0);
            self.eps.resize(plane, 0);
            self.ones.resize(plane, 0);
        }
        if self.alpha_tot.len() < frames {
            self.alpha_tot.resize(frames, 0);
            self.eps_tot.resize(frames, 0);
            self.ones_tot.resize(frames, 0);
        }
        let nodes = len * frames;
        if self.cur.len() < nodes {
            self.cur.resize(nodes, 0);
            self.next.resize(nodes, 0);
            self.cur_q.resize(nodes, 0);
            self.next_q.resize(nodes, 0);
            self.cur_a.resize(nodes, 0);
            self.next_a.resize(nodes, 0);
            self.cur_e.resize(nodes, 0);
            self.next_e.resize(nodes, 0);
        }
    }

    fn load_frame_raw<F: FnMut(usize) -> Tag>(&mut self, f: usize, mut tag: F) {
        debug_assert!(f < self.frames);
        let col = f * self.nwords;
        let (mut alo, mut ahi) = (0u64, 0u64);
        for i in 0..self.len {
            let (blo, bhi) = match tag(i) {
                Tag::Zero => (0, 0),
                Tag::One => (1, 0),
                Tag::Alpha => (0, 1),
                Tag::Eps => (1, 1),
            };
            let sh = i & 63;
            alo |= (blo as u64) << sh;
            ahi |= (bhi as u64) << sh;
            if sh == 63 {
                self.lo[col + (i >> 6)] = alo;
                self.hi[col + (i >> 6)] = ahi;
                (alo, ahi) = (0, 0);
            }
        }
        if self.len & 63 != 0 {
            self.lo[col + (self.len >> 6)] = alo;
            self.hi[col + (self.len >> 6)] = ahi;
        }
    }

    /// Loads frame `f`'s tags into its contiguous plane column.
    pub fn load_frame<F: FnMut(usize) -> Tag>(&mut self, f: usize, tag: F) {
        let clock = ProfClock::start();
        self.load_frame_raw(f, tag);
        self.profile.tag_derive_ops += self.len as u64;
        self.profile.tag_derive_nanos += clock.elapsed_nanos();
    }

    /// Loads every frame's tags in one call — `tag(f, i)` is frame `f`'s
    /// tag at position `i`. One profiler clock pair covers the whole batch
    /// (a per-frame [`BatchSweep::load_frame`] loop pays two timestamp
    /// reads per frame per block when the `plan-profile` feature is on —
    /// measurable distortion at deep recursion levels).
    pub fn load_frames<F: FnMut(usize, usize) -> Tag>(&mut self, mut tag: F) {
        let clock = ProfClock::start();
        for f in 0..self.frames {
            self.load_frame_raw(f, |i| tag(f, i));
        }
        self.profile.tag_derive_ops += (self.frames * self.len) as u64;
        self.profile.tag_derive_nanos += clock.elapsed_nanos();
    }

    /// Branchless [`BatchSweep::load_frame`] from discriminant codes
    /// (`tag as u8`): the two low bits of the code are exactly the
    /// `(lo, hi)` plane encoding, mirroring
    /// [`crate::bitplan::TagVec::fill_from_codes`]. Use when the tags are
    /// already materialized (the post-scatter reload).
    fn load_frame_codes_raw<F: FnMut(usize) -> u8>(&mut self, f: usize, mut code: F) {
        debug_assert!(f < self.frames);
        let col = f * self.nwords;
        let (mut alo, mut ahi) = (0u64, 0u64);
        for i in 0..self.len {
            let t = code(i) as u64;
            debug_assert!(t < 4);
            let sh = i & 63;
            alo |= (t & 1) << sh;
            ahi |= ((t >> 1) & 1) << sh;
            if sh == 63 {
                self.lo[col + (i >> 6)] = alo;
                self.hi[col + (i >> 6)] = ahi;
                (alo, ahi) = (0, 0);
            }
        }
        if self.len & 63 != 0 {
            self.lo[col + (self.len >> 6)] = alo;
            self.hi[col + (self.len >> 6)] = ahi;
        }
    }

    /// Branchless [`BatchSweep::load_frame`] from discriminant codes
    /// (`tag as u8`): the two low bits of the code are exactly the
    /// `(lo, hi)` plane encoding, mirroring
    /// [`crate::bitplan::TagVec::fill_from_codes`]. Use when the tags are
    /// already materialized (the post-scatter reload).
    pub fn load_frame_codes<F: FnMut(usize) -> u8>(&mut self, f: usize, code: F) {
        let clock = ProfClock::start();
        self.load_frame_codes_raw(f, code);
        self.profile.tag_derive_ops += self.len as u64;
        self.profile.tag_derive_nanos += clock.elapsed_nanos();
    }

    /// Branchless [`BatchSweep::load_frames`] from discriminant codes —
    /// `code(f, i)` is frame `f`'s `tag as u8` at position `i`; one clock
    /// pair covers the whole batch.
    pub fn load_frames_codes<F: FnMut(usize, usize) -> u8>(&mut self, mut code: F) {
        let clock = ProfClock::start();
        for f in 0..self.frames {
            self.load_frame_codes_raw(f, |i| code(f, i));
        }
        self.profile.tag_derive_ops += (self.frames * self.len) as u64;
        self.profile.tag_derive_nanos += clock.elapsed_nanos();
    }

    /// The per-op profile accumulated since the last take, leaving zeros
    /// behind (see [`crate::profile`]).
    pub fn take_profile(&mut self) -> PlanOpProfile {
        std::mem::take(&mut self.profile)
    }

    /// The per-op profile accumulated so far.
    pub fn profile(&self) -> &PlanOpProfile {
        &self.profile
    }

    /// Tag at position `i` of frame `f`.
    #[inline]
    pub fn get(&self, f: usize, i: usize) -> Tag {
        debug_assert!(f < self.frames && i < self.len);
        let idx = f * self.nwords + (i >> 6);
        let sh = i & 63;
        match (self.lo[idx] >> sh & 1, self.hi[idx] >> sh & 1) {
            (0, 0) => Tag::Zero,
            (1, 0) => Tag::One,
            (0, 1) => Tag::Alpha,
            _ => Tag::Eps,
        }
    }

    /// Tallies all four tags of every loaded frame, one contiguous plane
    /// column per frame. `out[f]` receives frame `f`'s counts; `out` must
    /// hold at least `frames` entries.
    pub fn counts_all(&self, out: &mut [TagCounts]) {
        for (f, c) in out[..self.frames].iter_mut().enumerate() {
            *c = TagCounts::default();
            let col = f * self.nwords;
            for w in 0..self.nwords {
                let m = lane_tail_mask(self.len, w);
                let (lo, hi) = (self.lo[col + w], self.hi[col + w]);
                c.n0 += ((!lo & !hi) & m).count_ones() as usize;
                c.n1 += ((lo & !hi) & m).count_ones() as usize;
                c.na += ((!lo & hi) & m).count_ones() as usize;
                c.ne += ((lo & hi) & m).count_ones() as usize;
            }
        }
    }

    /// Position of the first α tag of frame `f`, if any — the quasisort
    /// precondition check, matching [`crate::bitplan::TagVec::first_in_plane`].
    pub fn first_alpha(&self, f: usize) -> Option<usize> {
        let col = f * self.nwords;
        for w in 0..self.nwords {
            let (lo, hi) = (self.lo[col + w], self.hi[col + w]);
            let x = (!lo & hi) & lane_tail_mask(self.len, w);
            if x != 0 {
                return Some((w << 6) + x.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Derives one single-tag plane (and its per-frame totals) for all
    /// frames, streaming each frame's contiguous word column: boolean ops,
    /// masks and popcounts the compiler autovectorizes. The totals seed the
    /// carried scatter root and the quasisort Eq. 2 pre-check — no per-word
    /// rank rows are built.
    fn derive_plane(
        plane: u8,
        len: usize,
        nwords: usize,
        fr: usize,
        lo: &[u64],
        hi: &[u64],
        out: &mut [u64],
        tot: &mut [u32],
    ) {
        for (f, t) in tot[..fr].iter_mut().enumerate() {
            let col = f * nwords;
            let mut acc = 0u32;
            for w in 0..nwords {
                let m = lane_tail_mask(len, w);
                let (l, h) = (lo[col + w], hi[col + w]);
                let x = match plane {
                    0 => (l & !h) & m,  // ones
                    1 => (!l & h) & m,  // alpha
                    _ => (l & h) & m,   // eps
                };
                out[col + w] = x;
                acc += x.count_ones();
            }
            *t = acc;
        }
    }

    /// Ones in the aligned segment `[pos, pos + seg)` of frame `f`'s
    /// contiguous column of `plane` — the batch analogue of
    /// [`crate::bitplan::BitVec::seg_count`]. Every query the backward
    /// waves issue is of this aligned form, so no rank rows are needed.
    #[inline]
    fn seg_count(plane: &[u64], nwords: usize, f: usize, pos: usize, seg: usize) -> usize {
        debug_assert!(seg.is_power_of_two(), "seg={seg}");
        debug_assert!(pos % seg == 0, "pos={pos} seg={seg}");
        let col = f * nwords;
        if seg < 64 {
            let w = pos >> 6;
            if w >= nwords {
                return 0;
            }
            ((plane[col + w] >> (pos & 63)) & ((1u64 << seg) - 1)).count_ones() as usize
        } else {
            let w1 = ((pos + seg) >> 6).min(nwords);
            let mut acc = 0u32;
            for w in (pos >> 6)..w1 {
                acc += plane[col + w].count_ones();
            }
            acc as usize
        }
    }

    /// The `(l, dominant-is-α)` forward pair of a child node whose own
    /// `(α, ε)` counts were just split off its parent's carried counts —
    /// the strided analogue of the scalar sweep's `child_pair`. An empty
    /// subtree (`a + e == 0`) short-circuits to `(0, ε)`: every spine
    /// descendant is also empty, so the reference tie walk provably ends at
    /// a leaf returning ε.
    #[inline]
    fn child_pair(&self, f: usize, a: usize, e: usize, j: usize, b: usize, steps: &mut u64) -> (usize, bool) {
        if a > e {
            return (a - e, true);
        }
        if e > a {
            return (e - a, false);
        }
        if a == 0 {
            return (0, false);
        }
        (0, self.tie_type(f, j, b, steps))
    }

    /// Resolves an `nα == nε` tie by walking the upper-child spine exactly
    /// like the scalar sweep, with the same empty-subtree early exit.
    fn tie_type(&self, f: usize, j: usize, b: usize, steps: &mut u64) -> bool {
        let (mut jj, mut bb) = (j, b);
        while jj > 0 {
            jj -= 1;
            bb <<= 1;
            *steps += 1;
            let seg = 1usize << jj;
            let a = Self::seg_count(&self.alpha, self.nwords, f, bb * seg, seg);
            let e = Self::seg_count(&self.eps, self.nwords, f, bb * seg, seg);
            if a > e {
                return true;
            }
            if e > a {
                return false;
            }
            if a == 0 {
                return false;
            }
        }
        false
    }

    /// Lockstep Table 4: plans a scatter with target start `s_target` for
    /// every loaded frame, writing frame `f`'s settings into `settings[f]`
    /// (same `base` block offset for all frames). Bit-for-bit equal to
    /// running [`crate::bitplan::SweepScratch::plan_scatter`] per frame.
    pub fn plan_scatter_all(&mut self, s_target: usize, base: usize, settings: &mut [RbnSettings]) {
        let (sz, fr) = (self.len, self.frames);
        let m = log2_exact(sz) as usize;
        assert!(s_target < sz);
        assert!(settings.len() >= fr);
        let clock = ProfClock::start();
        Self::derive_plane(1, sz, self.nwords, fr, &self.lo, &self.hi, &mut self.alpha, &mut self.alpha_tot);
        Self::derive_plane(2, sz, self.nwords, fr, &self.lo, &self.hi, &mut self.eps, &mut self.eps_tot);
        self.profile.rank_nanos += clock.elapsed_nanos();
        let clock = ProfClock::start();
        let mut steps = 0u64;
        // Root carried counts come straight from the plane totals; each
        // level then splits a node's own counts into its children with two
        // segment counts (upper) and two subtractions (lower).
        for f in 0..fr {
            self.cur[f * sz] = s_target as u32;
            self.cur_a[f * sz] = self.alpha_tot[f];
            self.cur_e[f * sz] = self.eps_tot[f];
        }
        for j in (1..=m).rev() {
            let half = 1usize << (j - 1);
            let n_prime = 1usize << j;
            for (f, table) in settings[..fr].iter_mut().enumerate() {
                let row = f * sz;
                for b in 0..(sz >> j) {
                    let s_node = self.cur[row + b] as usize;
                    let a_node = self.cur_a[row + b] as usize;
                    let e_node = self.cur_e[row + b] as usize;
                    let a_up = Self::seg_count(&self.alpha, self.nwords, f, 2 * b * half, half);
                    let e_up = Self::seg_count(&self.eps, self.nwords, f, 2 * b * half, half);
                    let (a_dn, e_dn) = (a_node - a_up, e_node - e_up);
                    let l_node = (a_node as isize - e_node as isize).unsigned_abs();
                    let (l0, a0) = self.child_pair(f, a_up, e_up, j - 1, 2 * b, &mut steps);
                    let (l1, a1) = self.child_pair(f, a_dn, e_dn, j - 1, 2 * b + 1, &mut steps);
                    self.next_a[row + 2 * b] = a_up as u32;
                    self.next_e[row + 2 * b] = e_up as u32;
                    self.next_a[row + 2 * b + 1] = a_dn as u32;
                    self.next_e[row + 2 * b + 1] = e_dn as u32;
                    let slice = table.block_mut(j - 1, (base >> j) + b);
                    let (s0, s1);
                    if a0 == a1 {
                        // ε/α-addition: Lemma 1.
                        s0 = s_node % half;
                        s1 = (s_node + l0) % half;
                        let bset = ((s_node + l0) / half) % 2;
                        let (b_val, b_comp) = if bset == 1 {
                            (SwitchSetting::Crossing, SwitchSetting::Parallel)
                        } else {
                            (SwitchSetting::Parallel, SwitchSetting::Crossing)
                        };
                        binary_compact_setting_into(slice, 0, s1, b_comp, b_val);
                    } else {
                        // ε/α-elimination: Lemmas 2–5.
                        let bcast = if a0 {
                            SwitchSetting::UpperBroadcast
                        } else {
                            SwitchSetting::LowerBroadcast
                        };
                        let (s_tmp, l_tmp, ucast);
                        if l0 >= l1 {
                            s0 = s_node % half;
                            s1 = (s_node + l_node) % half;
                            s_tmp = s1;
                            l_tmp = l1;
                            ucast = SwitchSetting::Parallel;
                        } else {
                            s0 = (s_node + l_node) % half;
                            s1 = s_node % half;
                            s_tmp = s0;
                            l_tmp = l0;
                            ucast = SwitchSetting::Crossing;
                        }
                        let ucomp = ucast.complement();
                        if s_node + l_node < half {
                            binary_compact_setting_into(slice, s_tmp, l_tmp, ucast, bcast);
                        } else if s_node < half {
                            crate::setting::trinary_compact_setting_into(
                                slice, s_tmp, l_tmp, ucomp, bcast, ucast,
                            );
                        } else if s_node + l_node < n_prime {
                            binary_compact_setting_into(slice, s_tmp, l_tmp, ucomp, bcast);
                        } else {
                            crate::setting::trinary_compact_setting_into(
                                slice, s_tmp, l_tmp, ucast, bcast, ucomp,
                            );
                        }
                    }
                    self.next[row + 2 * b] = s0 as u32;
                    self.next[row + 2 * b + 1] = s1 as u32;
                }
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            std::mem::swap(&mut self.cur_a, &mut self.next_a);
            std::mem::swap(&mut self.cur_e, &mut self.next_e);
        }
        self.profile.scatter_ops += fr as u64 * (sz as u64 - 1);
        self.profile.rank_ops += fr as u64 * 2 * (sz as u64 - 1) + 2 * steps;
        self.profile.scatter_nanos += clock.elapsed_nanos();
    }

    /// Lockstep fused Table 6 + Table 3: the complete quasisort plan for
    /// every loaded frame in a single backward wave per tree level, using
    /// the same `γ(j,b) = n₁ + (n_ε − ε₀)` identity as
    /// [`crate::bitplan::SweepScratch::plan_quasisort_fused`].
    ///
    /// On a constraint violation returns `Err((frame, error))` for the
    /// first offending frame **before any settings are written**, so the
    /// caller can fall back to per-frame planning with untouched state.
    pub fn plan_quasisort_fused_all(
        &mut self,
        base: usize,
        settings: &mut [RbnSettings],
    ) -> Result<(), (usize, PlanError)> {
        let (sz, fr) = (self.len, self.frames);
        let m = log2_exact(sz) as usize;
        assert!(settings.len() >= fr);
        let clock = ProfClock::start();
        Self::derive_plane(0, sz, self.nwords, fr, &self.lo, &self.hi, &mut self.ones, &mut self.ones_tot);
        Self::derive_plane(2, sz, self.nwords, fr, &self.lo, &self.hi, &mut self.eps, &mut self.eps_tot);
        self.profile.rank_nanos += clock.elapsed_nanos();
        let clock = ProfClock::start();
        for f in 0..fr {
            if let Some(position) = self.first_alpha(f) {
                return Err((f, PlanError::AlphaInQuasisort { position }));
            }
            let n1 = self.ones_tot[f] as usize;
            let ne = self.eps_tot[f] as usize;
            let n0 = sz - n1 - ne;
            if n0 > sz / 2 || n1 > sz / 2 {
                return Err((
                    f,
                    PlanError::HalfOverflow {
                        n0,
                        n1,
                        half: sz / 2,
                    },
                ));
            }
            self.cur[f * sz] = (sz / 2) as u32;
            self.cur_q[f * sz] = (ne - (sz / 2 - n1)) as u32;
        }
        for j in (1..=m).rev() {
            let half = 1usize << (j - 1);
            for (f, table) in settings[..fr].iter_mut().enumerate() {
                let row = f * sz;
                for b in 0..(sz >> j) {
                    let u_lo = 2 * b * half;
                    let s_node = self.cur[row + b] as usize;
                    let e0 = self.cur_q[row + b] as usize;
                    let upper_eps = Self::seg_count(&self.eps, self.nwords, f, u_lo, half);
                    let u_e0 = e0.min(upper_eps);
                    let l0 = Self::seg_count(&self.ones, self.nwords, f, u_lo, half)
                        + (upper_eps - u_e0);
                    let s0 = s_node % half;
                    let s1 = (s_node + l0) % half;
                    let bset = ((s_node + l0) / half) % 2;
                    let (b_val, b_comp) = if bset == 1 {
                        (SwitchSetting::Crossing, SwitchSetting::Parallel)
                    } else {
                        (SwitchSetting::Parallel, SwitchSetting::Crossing)
                    };
                    binary_compact_setting_into(
                        table.block_mut(j - 1, (base >> j) + b),
                        0,
                        s1,
                        b_comp,
                        b_val,
                    );
                    self.next[row + 2 * b] = s0 as u32;
                    self.next[row + 2 * b + 1] = s1 as u32;
                    self.next_q[row + 2 * b] = u_e0 as u32;
                    self.next_q[row + 2 * b + 1] = (e0 - u_e0) as u32;
                }
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            std::mem::swap(&mut self.cur_q, &mut self.next_q);
        }
        self.profile.quasisort_ops += fr as u64 * (sz as u64 - 1);
        self.profile.rank_ops += fr as u64 * 2 * (sz as u64 - 1);
        self.profile.quasisort_nanos += clock.elapsed_nanos();
        Ok(())
    }

    /// Heap bytes currently reserved by all SoA buffers.
    pub fn footprint_bytes(&self) -> usize {
        (self.lo.capacity()
            + self.hi.capacity()
            + self.alpha.capacity()
            + self.eps.capacity()
            + self.ones.capacity())
            * 8
            + (self.alpha_tot.capacity()
                + self.eps_tot.capacity()
                + self.ones_tot.capacity()
                + self.cur.capacity()
                + self.next.capacity()
                + self.cur_q.capacity()
                + self.next_q.capacity()
                + self.cur_a.capacity()
                + self.next_a.capacity()
                + self.cur_e.capacity()
                + self.next_e.capacity())
                * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitplan::SweepScratch;

    fn tag_of(code: u64) -> Tag {
        match code & 3 {
            0 => Tag::Zero,
            1 => Tag::One,
            2 => Tag::Alpha,
            _ => Tag::Eps,
        }
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn batch_scatter_matches_per_frame_sweep() {
        let mut batch = BatchSweep::new();
        let mut scratch = SweepScratch::new();
        let mut state = 0xA076_1D64_78BD_642Fu64;
        for n in [4usize, 8, 64, 256] {
            for frames in [1usize, 3, 7, 64] {
                let tags: Vec<Vec<Tag>> = (0..frames)
                    .map(|_| (0..n).map(|_| tag_of(xorshift(&mut state))).collect())
                    .collect();
                batch.begin(frames, n);
                for (f, t) in tags.iter().enumerate() {
                    batch.load_frame(f, |i| t[i]);
                }
                let mut got: Vec<RbnSettings> =
                    (0..frames).map(|_| RbnSettings::identity(n)).collect();
                batch.plan_scatter_all(0, 0, &mut got);
                for (f, t) in tags.iter().enumerate() {
                    let mut want = RbnSettings::identity(n);
                    scratch.set_tags(n, |i| t[i]);
                    scratch.plan_scatter(0, 0, &mut want);
                    assert_eq!(got[f], want, "n={n} frames={frames} f={f}");
                }
            }
        }
    }

    #[test]
    fn batch_quasisort_matches_per_frame_sweep() {
        let mut batch = BatchSweep::new();
        let mut scratch = SweepScratch::new();
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for n in [4usize, 8, 64, 256] {
            for frames in [1usize, 2, 5, 64] {
                // ε-heavy draw so the half constraints usually hold; retry
                // whole batches until every frame is feasible.
                let tags: Vec<Vec<Tag>> = loop {
                    let cand: Vec<Vec<Tag>> = (0..frames)
                        .map(|_| {
                            (0..n)
                                .map(|_| match xorshift(&mut state) % 4 {
                                    0 => Tag::Zero,
                                    1 => Tag::One,
                                    _ => Tag::Eps,
                                })
                                .collect()
                        })
                        .collect();
                    let ok = cand.iter().all(|t| {
                        let mut s = SweepScratch::new();
                        s.set_tags(n, |i| t[i]);
                        s.eps_divide().is_ok()
                    });
                    if ok {
                        break cand;
                    }
                };
                batch.begin(frames, n);
                for (f, t) in tags.iter().enumerate() {
                    batch.load_frame(f, |i| t[i]);
                }
                let mut got: Vec<RbnSettings> =
                    (0..frames).map(|_| RbnSettings::identity(n)).collect();
                batch.plan_quasisort_fused_all(0, &mut got).unwrap();
                for (f, t) in tags.iter().enumerate() {
                    let mut want = RbnSettings::identity(n);
                    scratch.set_tags(n, |i| t[i]);
                    scratch.plan_quasisort_fused(0, &mut want).unwrap();
                    assert_eq!(got[f], want, "n={n} frames={frames} f={f}");
                }
            }
        }
    }

    #[test]
    fn batch_quasisort_reports_first_offending_frame() {
        let mut batch = BatchSweep::new();
        batch.begin(3, 4);
        use Tag::*;
        let frames = [
            [One, Eps, Zero, Eps],   // fine
            [One, One, One, Eps],    // half overflow (n1 = 3)
            [Alpha, Eps, Zero, Eps], // alpha — later frame, must not win
        ];
        for (f, t) in frames.iter().enumerate() {
            batch.load_frame(f, |i| t[i]);
        }
        let mut settings: Vec<RbnSettings> = (0..3).map(|_| RbnSettings::identity(4)).collect();
        assert_eq!(
            batch.plan_quasisort_fused_all(0, &mut settings),
            Err((1, PlanError::HalfOverflow { n0: 0, n1: 3, half: 2 }))
        );
    }

    #[test]
    fn batch_counts_and_first_alpha_match_scalar() {
        let mut batch = BatchSweep::new();
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for n in [2usize, 8, 64, 128] {
            let frames = 9;
            let tags: Vec<Vec<Tag>> = (0..frames)
                .map(|_| (0..n).map(|_| tag_of(xorshift(&mut state))).collect())
                .collect();
            batch.begin(frames, n);
            for (f, t) in tags.iter().enumerate() {
                batch.load_frame(f, |i| t[i]);
            }
            let mut counts = vec![TagCounts::default(); frames];
            batch.counts_all(&mut counts);
            for (f, t) in tags.iter().enumerate() {
                assert_eq!(counts[f], TagCounts::of(t), "n={n} f={f}");
                assert_eq!(
                    batch.first_alpha(f),
                    t.iter().position(|&x| x == Tag::Alpha),
                    "n={n} f={f}"
                );
                for (i, &x) in t.iter().enumerate() {
                    assert_eq!(batch.get(f, i), x, "n={n} f={f} i={i}");
                }
            }
        }
    }

    #[test]
    fn load_frame_codes_matches_load_frame() {
        let mut a = BatchSweep::new();
        let mut b = BatchSweep::new();
        let mut state = 0x6C62_272E_07BB_0142u64;
        for n in [2usize, 64, 128, 256] {
            let frames = 5;
            let tags: Vec<Vec<Tag>> = (0..frames)
                .map(|_| (0..n).map(|_| tag_of(xorshift(&mut state))).collect())
                .collect();
            a.begin(frames, n);
            b.begin(frames, n);
            for (f, t) in tags.iter().enumerate() {
                a.load_frame(f, |i| t[i]);
                b.load_frame_codes(f, |i| t[i] as u8);
            }
            for (f, t) in tags.iter().enumerate() {
                for (i, &x) in t.iter().enumerate() {
                    assert_eq!(b.get(f, i), x, "n={n} f={f} i={i}");
                    assert_eq!(a.get(f, i), b.get(f, i), "n={n} f={f} i={i}");
                }
            }
        }
    }

    #[test]
    fn batch_profile_counts_are_exact_closed_forms() {
        let (n, frames) = (64usize, 3usize);
        let mut batch = BatchSweep::new();
        batch.begin(frames, n);
        for f in 0..frames {
            batch.load_frame(f, |i| if i % 2 == 0 { Tag::Alpha } else { Tag::Eps });
        }
        let mut settings: Vec<RbnSettings> = (0..frames).map(|_| RbnSettings::identity(n)).collect();
        batch.plan_scatter_all(0, 0, &mut settings);
        let p = batch.take_profile();
        assert_eq!(p.tag_derive_ops, (frames * n) as u64);
        assert_eq!(p.scatter_ops, (frames * (n - 1)) as u64);
        assert!(p.rank_ops >= (frames * 2 * (n - 1)) as u64);
        assert_eq!(p.quasisort_ops, 0);
        assert!(batch.profile().is_empty(), "take must drain");

        // Fused quasisort wave books its own categories.
        for f in 0..frames {
            batch.load_frame_codes(f, |i| if i % 2 == 0 { Tag::One as u8 } else { Tag::Eps as u8 });
        }
        batch.plan_quasisort_fused_all(0, &mut settings).unwrap();
        let q = batch.take_profile();
        assert_eq!(q.tag_derive_ops, (frames * n) as u64);
        assert_eq!(q.quasisort_ops, (frames * (n - 1)) as u64);
        assert_eq!(q.rank_ops, (frames * 2 * (n - 1)) as u64);
        assert_eq!(q.scatter_ops, 0);
    }

    #[test]
    fn batch_writes_at_block_offsets() {
        // Two frames of a 4-wide block planned at base 4 of an 8-wide table.
        let mut batch = BatchSweep::new();
        let mut scratch = SweepScratch::new();
        use Tag::*;
        let frames = [[Alpha, Eps, Zero, One], [Eps, Alpha, One, Zero]];
        batch.begin(2, 4);
        for (f, t) in frames.iter().enumerate() {
            batch.load_frame(f, |i| t[i]);
        }
        let mut got: Vec<RbnSettings> = (0..2).map(|_| RbnSettings::identity(8)).collect();
        batch.plan_scatter_all(0, 4, &mut got);
        for (f, t) in frames.iter().enumerate() {
            let mut want = RbnSettings::identity(8);
            scratch.set_tags(4, |i| t[i]);
            scratch.plan_scatter(0, 4, &mut want);
            assert_eq!(got[f], want, "f={f}");
        }
    }
}
