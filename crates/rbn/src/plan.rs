//! The distributed self-routing algorithms of Section 6 (Tables 3–6).
//!
//! Each algorithm runs over the complete binary tree embedded in an RBN
//! (Fig. 8): a node of *height* `j` represents a sub-RBN of size `2^j`
//! (leaves are single input lines at height 0; the root is the whole
//! network). Values flow leaf→root in the **forward phase** and root→leaf in
//! the **backward phase**; every node then sets the switches of its own
//! merging stage in parallel (the **switch-setting phase**).
//!
//! The planners here compute exactly what the paper's per-switch circuits
//! compute, but as ordinary recursion over per-level arrays — which also
//! makes the forward/backward traffic available to the timing model in
//! `brsmn-sim`.
//!
//! Two typos of the published tables are corrected (see DESIGN.md §4):
//! `b ← ((s+l₀) div (n′/2)) mod n′/2` is `mod 2` (it must match Lemma 1),
//! and the ε-divide backward rule `n″ε₁ ← n″ε − n′ε₁` is `n″ε − n″ε₀`
//! (required by invariants (7)–(9)).

use crate::fabric::RbnSettings;
use crate::setting::{binary_compact_setting, trinary_compact_setting};
use brsmn_switch::{QTag, SwitchSetting, Tag};
use brsmn_topology::log2_exact;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The dominating tag type among `α` and `ε` in a sub-RBN (Theorem 3: the
/// compact run at the outputs consists of `|nα − nε|` symbols of the
/// dominating type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomType {
    /// `α` dominates (`nα ≥ nε`).
    Alpha,
    /// `ε` dominates (`nε ≥ nα`).
    Eps,
}

/// Per-node forward values of the scatter algorithm: run length `l` and
/// dominating type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScatterNode {
    /// `|nα − nε|` for this sub-RBN.
    pub l: usize,
    /// Which of the two dominates.
    pub ty: DomType,
}

/// Error from the planners when the input tags violate a precondition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Quasisorting input contained an `α` (scatter must run first).
    AlphaInQuasisort {
        /// Input position of the offending tag.
        position: usize,
    },
    /// More than `n/2` inputs bound for one half (violates Eq. 2).
    HalfOverflow {
        /// Number of `0`-tagged inputs.
        n0: usize,
        /// Number of `1`-tagged inputs.
        n1: usize,
        /// The bound `n/2`.
        half: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::AlphaInQuasisort { position } => {
                write!(f, "α tag at input {position} of a quasisorting network")
            }
            PlanError::HalfOverflow { n0, n1, half } => write!(
                f,
                "half overflow: n0={n0}, n1={n1} exceed capacity {half} per half"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Result of planning a bit-sorting RBN (Table 3): the switch settings plus
/// the forward (`l`) and backward (`s`) values at every tree node, exposed
/// for the gate-delay timing model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitsortPlan {
    /// `l[j][b]`: number of γ symbols in the height-`j` sub-RBN at block `b`.
    pub l: Vec<Vec<usize>>,
    /// `s[j][b]`: starting position handed to that sub-RBN.
    pub s: Vec<Vec<usize>>,
    /// The resulting switch settings (only parallel/crossing).
    pub settings: RbnSettings,
}

/// Plans a bit-sorting RBN (Table 3 / Lemma 1): the inputs marked `true` in
/// `gamma` end up in the circular compact run `C^n_{s_target, l}` at the
/// outputs; the `false` inputs fill the complementary run.
///
/// With `gamma[i] = (tag_i == 1)` and `s_target = n/2` this is the ascending
/// bit sort `0^{n0} 1^{n1}` of Section 4.
pub fn plan_bitsort(gamma: &[bool], s_target: usize) -> BitsortPlan {
    let n = gamma.len();
    let m = log2_exact(n) as usize;
    assert!(s_target < n);

    // Forward phase: l[j][b] = l[j-1][2b] + l[j-1][2b+1].
    let mut l: Vec<Vec<usize>> = Vec::with_capacity(m + 1);
    l.push(gamma.iter().map(|&g| g as usize).collect());
    for j in 1..=m {
        let prev = &l[j - 1];
        l.push(
            (0..n >> j)
                .map(|b| prev[2 * b] + prev[2 * b + 1])
                .collect(),
        );
    }

    // Backward phase + switch setting.
    let mut s: Vec<Vec<usize>> = (0..=m).map(|j| vec![0usize; n >> j]).collect();
    s[m][0] = s_target;
    let mut settings = RbnSettings::identity(n);
    for j in (1..=m).rev() {
        let n_prime = 1usize << j;
        let half = n_prime / 2;
        for b in 0..(n >> j) {
            let s_node = s[j][b];
            let l0 = l[j - 1][2 * b];
            let s0 = s_node % half;
            let s1 = (s_node + l0) % half;
            // Paper typo fixed: `mod 2`, not `mod n'/2` (Lemma 1).
            let bset = ((s_node + l0) / half) % 2;
            let (b_val, b_comp) = if bset == 1 {
                (SwitchSetting::Crossing, SwitchSetting::Parallel)
            } else {
                (SwitchSetting::Parallel, SwitchSetting::Crossing)
            };
            // W^{n'/2}_{0, s1; b̄, b}.
            let block = binary_compact_setting(n_prime, 0, s1, b_comp, b_val);
            settings.set_block(j - 1, b, &block);
            s[j - 1][2 * b] = s0;
            s[j - 1][2 * b + 1] = s1;
        }
    }
    BitsortPlan { l, s, settings }
}

/// Result of planning a scatter RBN (Table 4): switch settings plus the
/// forward `(l, type)` and backward `s` values at every tree node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScatterPlan {
    /// Forward values per height level.
    pub nodes: Vec<Vec<ScatterNode>>,
    /// Backward starting positions per height level.
    pub s: Vec<Vec<usize>>,
    /// The resulting switch settings.
    pub settings: RbnSettings,
}

impl ScatterPlan {
    /// The root's dominating type and run length — the output of the whole
    /// scatter network is `C^n_{s_target, l; χ, type}` (Theorem 3).
    pub fn root(&self) -> ScatterNode {
        self.nodes[self.nodes.len() - 1][0]
    }
}

/// Plans a scatter RBN (Table 4 / Theorem 3 / Lemmas 1–5) for arbitrary
/// input tags. At the outputs, the `|nα − nε|` symbols of the dominating
/// type form the compact run `C^n_{s_target, l}`; every other position holds
/// a `χ` (a `0` or `1` message). When `nα ≤ nε` — always true at the top of
/// a BSN by Eq. (3) — all `α`s are eliminated (Theorem 2).
pub fn plan_scatter(tags: &[Tag], s_target: usize) -> ScatterPlan {
    let n = tags.len();
    let m = log2_exact(n) as usize;
    assert!(s_target < n);

    // Forward phase (Table 4). χ leaves carry (l = 0, type = ε); the type of
    // an l = 0 node is never material (its compact run is empty).
    let mut nodes: Vec<Vec<ScatterNode>> = Vec::with_capacity(m + 1);
    nodes.push(
        tags.iter()
            .map(|&t| match t {
                Tag::Alpha => ScatterNode {
                    l: 1,
                    ty: DomType::Alpha,
                },
                Tag::Eps => ScatterNode {
                    l: 1,
                    ty: DomType::Eps,
                },
                _ => ScatterNode {
                    l: 0,
                    ty: DomType::Eps,
                },
            })
            .collect(),
    );
    for j in 1..=m {
        let prev = &nodes[j - 1];
        nodes.push(
            (0..n >> j)
                .map(|b| {
                    let c0 = prev[2 * b];
                    let c1 = prev[2 * b + 1];
                    if c0.ty == c1.ty {
                        ScatterNode {
                            l: c0.l + c1.l,
                            ty: c0.ty,
                        }
                    } else if c0.l >= c1.l {
                        ScatterNode {
                            l: c0.l - c1.l,
                            ty: c0.ty,
                        }
                    } else {
                        ScatterNode {
                            l: c1.l - c0.l,
                            ty: c1.ty,
                        }
                    }
                })
                .collect(),
        );
    }

    // Backward phase + switch setting (Table 4).
    let mut s: Vec<Vec<usize>> = (0..=m).map(|j| vec![0usize; n >> j]).collect();
    s[m][0] = s_target;
    let mut settings = RbnSettings::identity(n);
    for j in (1..=m).rev() {
        let n_prime = 1usize << j;
        let half = n_prime / 2;
        for b in 0..(n >> j) {
            let s_node = s[j][b];
            let l_node = nodes[j][b].l;
            let c0 = nodes[j - 1][2 * b];
            let c1 = nodes[j - 1][2 * b + 1];
            let block;
            let (s0, s1);
            if c0.ty == c1.ty {
                // ε/α-addition: Lemma 1, same as the bit-sorting setting.
                s0 = s_node % half;
                s1 = (s_node + c0.l) % half;
                let bset = ((s_node + c0.l) / half) % 2;
                let (b_val, b_comp) = if bset == 1 {
                    (SwitchSetting::Crossing, SwitchSetting::Parallel)
                } else {
                    (SwitchSetting::Parallel, SwitchSetting::Crossing)
                };
                block = binary_compact_setting(n_prime, 0, s1, b_comp, b_val);
            } else {
                // ε/α-elimination: Lemmas 2–5.
                let bcast = if c0.ty == DomType::Alpha {
                    // α in the upper child: the broadcast port is the upper.
                    SwitchSetting::UpperBroadcast
                } else {
                    SwitchSetting::LowerBroadcast
                };
                let (s_tmp, l_tmp, ucast);
                if c0.l >= c1.l {
                    s0 = s_node % half;
                    s1 = (s_node + l_node) % half;
                    s_tmp = s1;
                    l_tmp = c1.l;
                    ucast = SwitchSetting::Parallel;
                } else {
                    s0 = (s_node + l_node) % half;
                    s1 = s_node % half;
                    s_tmp = s0;
                    l_tmp = c0.l;
                    ucast = SwitchSetting::Crossing;
                }
                let ucomp = ucast.complement();
                block = if s_node + l_node < half {
                    binary_compact_setting(n_prime, s_tmp, l_tmp, ucast, bcast)
                } else if s_node < half {
                    trinary_compact_setting(n_prime, s_tmp, l_tmp, ucomp, bcast, ucast)
                } else if s_node + l_node < n_prime {
                    binary_compact_setting(n_prime, s_tmp, l_tmp, ucomp, bcast)
                } else {
                    trinary_compact_setting(n_prime, s_tmp, l_tmp, ucast, bcast, ucomp)
                };
            }
            settings.set_block(j - 1, b, &block);
            s[j - 1][2 * b] = s0;
            s[j - 1][2 * b + 1] = s1;
        }
    }
    ScatterPlan { nodes, s, settings }
}

/// Per-node values of the ε-dividing algorithm (Table 6), exposed for the
/// timing model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpsDividePlan {
    /// `n_ε[j][b]`: number of ε inputs under each node.
    pub n_eps: Vec<Vec<usize>>,
    /// `(n_ε0, n_ε1)[j][b]`: the backward dummy quotas.
    pub quotas: Vec<Vec<(usize, usize)>>,
    /// The resulting per-input quasisort tags.
    pub qtags: Vec<QTag>,
}

/// The distributed ε-dividing algorithm (Section 6.2, Table 6): assigns each
/// `ε` input of a quasisorting network a dummy value `ε₀` or `ε₁` so that
/// exactly `n/2` inputs sort upward and `n/2` sort downward.
///
/// Inputs must be `{0, 1, ε}` with at most `n/2` of each message tag
/// (guaranteed after a scatter network by Theorem 2).
pub fn eps_divide(tags: &[Tag]) -> Result<EpsDividePlan, PlanError> {
    let n = tags.len();
    let m = log2_exact(n) as usize;
    if let Some(position) = tags.iter().position(|&t| t == Tag::Alpha) {
        return Err(PlanError::AlphaInQuasisort { position });
    }
    let n0 = tags.iter().filter(|&&t| t == Tag::Zero).count();
    let n1 = tags.iter().filter(|&&t| t == Tag::One).count();
    if n0 > n / 2 || n1 > n / 2 {
        return Err(PlanError::HalfOverflow {
            n0,
            n1,
            half: n / 2,
        });
    }

    // Forward phase: count εs per node.
    let mut n_eps: Vec<Vec<usize>> = Vec::with_capacity(m + 1);
    n_eps.push(
        tags.iter()
            .map(|&t| (t == Tag::Eps) as usize)
            .collect(),
    );
    for j in 1..=m {
        let prev = &n_eps[j - 1];
        n_eps.push(
            (0..n >> j)
                .map(|b| prev[2 * b] + prev[2 * b + 1])
                .collect(),
        );
    }

    // Backward phase: split the root quota (n_ε1 = n/2 − n1) down the tree.
    let mut quotas: Vec<Vec<(usize, usize)>> = (0..=m).map(|j| vec![(0, 0); n >> j]).collect();
    let root_e1 = n / 2 - n1;
    let root_e0 = n_eps[m][0] - root_e1;
    quotas[m][0] = (root_e0, root_e1);
    for j in (1..=m).rev() {
        for b in 0..(n >> j) {
            let (e0, _e1) = quotas[j][b];
            let upper_eps = n_eps[j - 1][2 * b];
            let lower_eps = n_eps[j - 1][2 * b + 1];
            let u_e0 = e0.min(upper_eps);
            let u_e1 = upper_eps - u_e0;
            let l_e0 = e0 - u_e0;
            // Paper typo fixed: n″ε₁ = n″ε − n″ε₀ (invariants 7–9), not
            // n″ε − n′ε₁.
            let l_e1 = lower_eps - l_e0;
            quotas[j - 1][2 * b] = (u_e0, u_e1);
            quotas[j - 1][2 * b + 1] = (l_e0, l_e1);
        }
    }

    // Leaf step: resolve each ε to ε₀ or ε₁.
    let qtags = tags
        .iter()
        .enumerate()
        .map(|(i, &t)| match t {
            Tag::Zero => QTag::Zero,
            Tag::One => QTag::One,
            Tag::Eps => {
                let (e0, e1) = quotas[0][i];
                debug_assert_eq!(e0 + e1, 1);
                if e0 == 1 {
                    QTag::Eps0
                } else {
                    QTag::Eps1
                }
            }
            Tag::Alpha => unreachable!("rejected above"),
        })
        .collect();

    Ok(EpsDividePlan {
        n_eps,
        quotas,
        qtags,
    })
}

/// Plans a quasisorting RBN (Section 5.2): ε-divide, then bit-sort on the
/// combined real/dummy sort bits with target `s = n/2`, so that all `0`s land
/// in the upper half of the outputs and all `1`s in the lower half.
pub fn plan_quasisort(tags: &[Tag]) -> Result<(EpsDividePlan, BitsortPlan), PlanError> {
    let n = tags.len();
    let divide = eps_divide(tags)?;
    let gamma: Vec<bool> = divide.qtags.iter().map(|q| q.sort_bit()).collect();
    let sort = plan_bitsort(&gamma, n / 2);
    Ok((divide, sort))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::is_compact_at;
    use brsmn_switch::Line;

    fn run_tags(settings: &RbnSettings, tags: &[Tag]) -> Vec<Tag> {
        let lines: Vec<Line<usize>> = tags
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                if t == Tag::Eps {
                    Line::empty()
                } else {
                    Line::with(t, i)
                }
            })
            .collect();
        settings
            .run(lines, &mut crate::fabric::clone_split)
            .expect("legal settings")
            .into_iter()
            .map(|l| l.tag)
            .collect()
    }

    #[test]
    fn bitsort_worked_example_n4() {
        // Inputs 1,0,1,0 with target s = 2 must sort to 0,0,1,1.
        let plan = plan_bitsort(&[true, false, true, false], 2);
        let out = run_tags(
            &plan.settings,
            &[Tag::One, Tag::Zero, Tag::One, Tag::Zero],
        );
        assert_eq!(out, vec![Tag::Zero, Tag::Zero, Tag::One, Tag::One]);
    }

    #[test]
    fn bitsort_exhaustive_n8() {
        // Theorem 1: every input pattern, every starting position.
        let n = 8;
        for pattern in 0..(1u32 << n) {
            let gamma: Vec<bool> = (0..n).map(|i| pattern >> i & 1 == 1).collect();
            for s in 0..n {
                let plan = plan_bitsort(&gamma, s);
                let tags: Vec<Tag> = gamma
                    .iter()
                    .map(|&g| if g { Tag::One } else { Tag::Zero })
                    .collect();
                let out = run_tags(&plan.settings, &tags);
                let out_gamma: Vec<bool> = out.iter().map(|&t| t == Tag::One).collect();
                let l = gamma.iter().filter(|&&g| g).count();
                assert!(
                    is_compact_at(&out_gamma, s % n, l),
                    "pattern={pattern:08b} s={s} out={out_gamma:?}"
                );
            }
        }
    }

    #[test]
    fn bitsort_preserves_messages() {
        // The sort is a permutation: every input payload appears exactly once.
        let gamma = [true, true, false, true, false, false, true, false];
        let plan = plan_bitsort(&gamma, 4);
        let lines: Vec<Line<usize>> = gamma
            .iter()
            .enumerate()
            .map(|(i, &g)| Line::with(if g { Tag::One } else { Tag::Zero }, i))
            .collect();
        let out = plan
            .settings
            .run(lines, &mut crate::fabric::clone_split)
            .unwrap();
        let mut payloads: Vec<usize> = out.iter().map(|l| l.payload.unwrap()).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, (0..8).collect::<Vec<_>>());
        // And each payload still carries its original tag.
        for line in &out {
            let i = line.payload.unwrap();
            let expect = if gamma[i] { Tag::One } else { Tag::Zero };
            assert_eq!(line.tag, expect);
        }
    }

    #[test]
    fn scatter_eliminates_alphas_paper_example() {
        // Fig. 4b input column: 1, α, ε, 0, ε, α, ε, ε.
        use Tag::*;
        let tags = [One, Alpha, Eps, Zero, Eps, Alpha, Eps, Eps];
        let plan = plan_scatter(&tags, 0);
        assert_eq!(plan.root().ty, DomType::Eps);
        assert_eq!(plan.root().l, 2); // nε − nα = 4 − 2.
        let out = run_tags(&plan.settings, &tags);
        assert!(out.iter().all(|&t| t != Alpha));
        let eps_positions: Vec<bool> = out.iter().map(|&t| t == Eps).collect();
        assert!(is_compact_at(&eps_positions, 0, 2), "{out:?}");
        // Theorem 2 output counts.
        assert_eq!(out.iter().filter(|&&t| t == Zero).count(), 3);
        assert_eq!(out.iter().filter(|&&t| t == One).count(), 3);
    }

    #[test]
    fn scatter_alpha_dominant_inputs() {
        // Theorem 3 case 2: more αs than εs leaves αs compact at s.
        use Tag::*;
        let tags = [Alpha, Alpha, Alpha, Eps, Zero, One, Alpha, Zero];
        for s in 0..8 {
            let plan = plan_scatter(&tags, s);
            assert_eq!(plan.root().ty, DomType::Alpha);
            assert_eq!(plan.root().l, 3);
            let out = run_tags(&plan.settings, &tags);
            let alphas: Vec<bool> = out.iter().map(|&t| t == Alpha).collect();
            assert!(is_compact_at(&alphas, s, 3), "s={s} {out:?}");
            assert!(out.iter().all(|&t| t != Eps));
        }
    }

    #[test]
    fn eps_divide_balances_halves() {
        use Tag::*;
        let tags = [One, Zero, Eps, Eps, One, Eps, Eps, Zero];
        let plan = eps_divide(&tags).unwrap();
        let ones = plan.qtags.iter().filter(|q| q.sort_bit()).count();
        assert_eq!(ones, 4);
        // Real tags survive unchanged.
        assert_eq!(plan.qtags[0], QTag::One);
        assert_eq!(plan.qtags[1], QTag::Zero);
        assert_eq!(plan.qtags[7], QTag::Zero);
    }

    #[test]
    fn eps_divide_invariants_hold_at_every_node() {
        use Tag::*;
        let tags = [Eps, One, Eps, Zero, Eps, Eps, One, Eps];
        let plan = eps_divide(&tags).unwrap();
        let m = 3;
        for j in 0..=m {
            for b in 0..(8 >> j) {
                let (e0, e1) = plan.quotas[j][b];
                // Eq. (7): n_ε = n_ε0 + n_ε1.
                assert_eq!(e0 + e1, plan.n_eps[j][b], "j={j} b={b}");
            }
        }
        for j in 1..=m {
            for b in 0..(8 >> j) {
                let (e0, e1) = plan.quotas[j][b];
                let (u0, u1) = plan.quotas[j - 1][2 * b];
                let (l0, l1) = plan.quotas[j - 1][2 * b + 1];
                // Eqs. (8)–(9).
                assert_eq!(e0, u0 + l0);
                assert_eq!(e1, u1 + l1);
            }
        }
    }

    #[test]
    fn eps_divide_rejects_alpha() {
        let err = eps_divide(&[Tag::Alpha, Tag::Eps]).unwrap_err();
        assert_eq!(err, PlanError::AlphaInQuasisort { position: 0 });
    }

    #[test]
    fn eps_divide_rejects_overflow() {
        use Tag::*;
        let err = eps_divide(&[One, One, One, Eps]).unwrap_err();
        assert!(matches!(err, PlanError::HalfOverflow { n1: 3, .. }));
    }

    #[test]
    fn quasisort_routes_halves() {
        use Tag::*;
        let tags = [One, Eps, Zero, One, Eps, Zero, Eps, Eps];
        let (_, sort) = plan_quasisort(&tags).unwrap();
        let out = run_tags(&sort.settings, &tags);
        for (i, &t) in out.iter().enumerate() {
            if i < 4 {
                assert_ne!(t, One, "position {i} of {out:?}");
            } else {
                assert_ne!(t, Zero, "position {i} of {out:?}");
            }
        }
        assert_eq!(out.iter().filter(|&&t| t == Zero).count(), 2);
        assert_eq!(out.iter().filter(|&&t| t == One).count(), 2);
    }

    #[test]
    fn quasisort_full_permutation_degenerates_to_bitsort() {
        use Tag::*;
        let tags = [One, Zero, One, Zero, Zero, One, Zero, One];
        let (divide, sort) = plan_quasisort(&tags).unwrap();
        assert!(divide.qtags.iter().all(|q| q.carries_message()));
        let out = run_tags(&sort.settings, &tags);
        assert_eq!(
            out,
            vec![Zero, Zero, Zero, Zero, One, One, One, One]
        );
    }
}
