//! Dependency-free scoped-thread parallelism helpers.
//!
//! The batched routing engine (`brsmn-core::engine`) exploits two sources of
//! parallelism that exist in the BRSMN by construction:
//!
//! 1. **Frame-level** — distinct multicast assignments ("frames") are
//!    completely independent, so a batch can be spread across a worker pool
//!    ([`par_map`]);
//! 2. **Intra-network** — after a BSN splits a block, the upper and lower
//!    `n/2 × n/2` sub-BRSMNs share no state and can recurse concurrently
//!    ([`join`]).
//!
//! Everything here is built on [`std::thread::scope`] — no external thread
//! pool. Workers pull indices from a shared atomic counter, so load balances
//! dynamically, while results are reassembled by index so output order is
//! **deterministic** regardless of scheduling.

use std::panic;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Resolves a requested worker count: `0` means "one per hardware thread",
/// any other value is used as given (minimum 1).
pub fn effective_workers(requested: usize) -> usize {
    resolve_workers(
        requested,
        thread::available_parallelism().ok().map(|p| p.get()),
    )
}

/// Pure core of [`effective_workers`], taking the detected hardware
/// parallelism explicitly so restricted environments can be simulated in
/// tests. `requested == 0` falls back to `detected`; a failed (`None`) or
/// degenerate (`Some(0)`) detection clamps to 1 worker — never an empty
/// pool.
pub fn resolve_workers(requested: usize, detected: Option<usize>) -> usize {
    if requested == 0 {
        detected.unwrap_or(1).max(1)
    } else {
        requested
    }
}

/// Runs two closures concurrently and returns both results.
///
/// `fa` runs on the calling thread while `fb` runs on a scoped thread, so
/// the cost is a single spawn/join. Panics are propagated to the caller.
///
/// ```
/// let (a, b) = brsmn_rbn::par::join(|| 2 + 2, || "ok");
/// assert_eq!((a, b), (4, "ok"));
/// ```
pub fn join<RA, RB, FA, FB>(fa: FA, fb: FB) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    FA: FnOnce() -> RA + Send,
    FB: FnOnce() -> RB + Send,
{
    thread::scope(|s| {
        let hb = s.spawn(fb);
        let ra = fa();
        let rb = hb.join().unwrap_or_else(|e| panic::resume_unwind(e));
        (ra, rb)
    })
}

/// Maps `f` over `items` on `workers` scoped threads, returning results in
/// input order.
///
/// Work distribution is dynamic (a shared atomic cursor), so uneven frames
/// do not leave workers idle; the output vector is reassembled by index, so
/// the result is identical to `items.iter().enumerate().map(f).collect()`
/// regardless of thread scheduling. `workers` is resolved through
/// [`effective_workers`] and capped at `items.len()`; with a single worker
/// (or a single item) no threads are spawned at all.
///
/// ```
/// let squares = brsmn_rbn::par::par_map(&[1u64, 2, 3, 4], 2, |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = effective_workers(workers).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, U)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| panic::resume_unwind(e)))
            .collect()
    });

    let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    for chunk in per_worker {
        for (i, u) in chunk {
            debug_assert!(out[i].is_none(), "index {i} produced twice");
            out[i] = Some(u);
        }
    }
    out.into_iter()
        .map(|slot| slot.expect("every index visited exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || vec![3usize; 2]);
        assert_eq!(a, 2);
        assert_eq!(b, vec![3, 3]);
    }

    #[test]
    fn join_nests() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        for workers in [1, 2, 4, 7] {
            let out = par_map(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_unbalanced_load() {
        // Make early items much heavier than late ones; order must hold.
        let items: Vec<usize> = (0..64).collect();
        let out = par_map(&items, 4, |_, &x| {
            let spin = if x < 4 { 20_000 } else { 10 };
            let mut acc = x as u64;
            for i in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, (x, _)) in out.iter().enumerate() {
            assert_eq!(i, *x);
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[9u32], 4, |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn effective_workers_resolution() {
        assert!(effective_workers(0) >= 1);
        assert_eq!(effective_workers(3), 3);
        assert_eq!(effective_workers(1), 1);
    }

    #[test]
    fn resolve_workers_clamps_restricted_environments() {
        // Detection failed entirely (e.g. sandboxed cgroup with no CPU info).
        assert_eq!(resolve_workers(0, None), 1);
        // Detection "succeeded" but reported zero CPUs.
        assert_eq!(resolve_workers(0, Some(0)), 1);
        // Normal detection passes through.
        assert_eq!(resolve_workers(0, Some(8)), 8);
        // Explicit requests are never overridden by detection.
        assert_eq!(resolve_workers(3, None), 3);
        assert_eq!(resolve_workers(3, Some(16)), 3);
    }

    #[test]
    fn par_map_with_zero_workers_in_restricted_mock() {
        // Regression: a batch must still complete when auto-detection would
        // resolve to the 1-worker floor.
        let workers = resolve_workers(0, Some(0));
        let items: Vec<usize> = (0..16).collect();
        let out = par_map(&items, workers, |_, &x| x + 1);
        assert_eq!(out, (1..17).collect::<Vec<_>>());
    }
}
