//! Execution fabric for a reverse banyan network: a per-stage table of switch
//! settings plus a message-level executor.
//!
//! Stage `j` of an `n × n` RBN pairs lines differing in address bit `j`
//! (see `brsmn-topology`); the executor walks the stages in order, applying
//! each switch's setting to its pair of lines. Broadcast switches duplicate
//! the `α` payload via a caller-supplied splitter closure (see
//! [`clone_split`]), which lets the binary splitting network divide a
//! destination set (or a routing-tag stream) at the moment a connection
//! forks.

use brsmn_switch::{Line, SwitchError, SwitchSetting, Tag};
use brsmn_topology::{log2_exact, stage::rbn_stage_blocks};
use serde::{Deserialize, Serialize};

/// A *splitter* divides the payload of an `α` message into the payloads of
/// its `0`-tagged and `1`-tagged copies, in that order. Any
/// `FnMut(P) -> (P, P)` closure works; [`clone_split`] is the trivial one.
pub fn clone_split<P: Clone>(payload: P) -> (P, P) {
    (payload.clone(), payload)
}

/// The complete switch-setting table of an `n × n` RBN: `log2 n` stages of
/// `n/2` settings each.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RbnSettings {
    n: usize,
    /// `stages[j][i]` is the setting of switch `i` of stage `j` (switch
    /// indices as in `brsmn_topology::ReverseBanyanTopology::switch_at`).
    stages: Vec<Vec<SwitchSetting>>,
}

impl RbnSettings {
    /// All-parallel settings for an `n × n` RBN.
    pub fn identity(n: usize) -> Self {
        let m = log2_exact(n) as usize;
        RbnSettings {
            n,
            stages: vec![vec![SwitchSetting::Parallel; n / 2]; m],
        }
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stages (`log2 n`).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Immutable view of one stage's settings.
    pub fn stage(&self, j: usize) -> &[SwitchSetting] {
        &self.stages[j]
    }

    /// Mutable view of one stage's settings.
    pub fn stage_mut(&mut self, j: usize) -> &mut [SwitchSetting] {
        &mut self.stages[j]
    }

    /// Writes the settings of the merging stage belonging to the sub-RBN of
    /// size `2^(j+1)` at block `b` of stage `j`: `block_settings` holds
    /// `2^j` entries which land at stage-`j` switch indices
    /// `[b·2^j, (b+1)·2^j)`.
    pub fn set_block(&mut self, j: usize, b: usize, block_settings: &[SwitchSetting]) {
        let w = 1usize << j;
        assert_eq!(block_settings.len(), w);
        self.stages[j][b * w..(b + 1) * w].copy_from_slice(block_settings);
    }

    /// Mutable view of the merging-stage slice that [`RbnSettings::set_block`]
    /// writes: the `2^j` stage-`j` settings of the sub-RBN at block `b`.
    /// Lets the zero-allocation planners fill settings in place.
    #[inline]
    pub fn block_mut(&mut self, j: usize, b: usize) -> &mut [SwitchSetting] {
        let w = 1usize << j;
        &mut self.stages[j][b * w..(b + 1) * w]
    }

    /// Resets every switch to parallel (used between passes of the feedback
    /// implementation when the physical RBN is re-programmed).
    pub fn reset_parallel(&mut self) {
        for stage in &mut self.stages {
            stage.fill(SwitchSetting::Parallel);
        }
    }

    /// Programs the switches of the sub-RBN occupying lines
    /// `[base, base + sub.n())` with the settings table of a `sub.n()`-sized
    /// network: local stage `j` switches map onto physical stage `j` indices
    /// `[base/2, base/2 + sub.n()/2)`.
    ///
    /// This is the "reuse" primitive of the feedback implementation
    /// (Section 7.3): deeper BSN levels re-program only the first stages of
    /// the single physical RBN, block by block.
    pub fn program_subnetwork(&mut self, base: usize, sub: &RbnSettings) {
        assert!(base.is_multiple_of(sub.n) && base + sub.n <= self.n);
        let w = sub.n / 2;
        for (j, sub_stage) in sub.stages.iter().enumerate() {
            self.stages[j][base / 2..base / 2 + w].copy_from_slice(sub_stage);
        }
    }

    /// Total number of switches *not* set to parallel — a rough utilization
    /// measure used by the examples.
    pub fn active_switches(&self) -> usize {
        self.stages
            .iter()
            .flatten()
            .filter(|s| **s != SwitchSetting::Parallel)
            .count()
    }

    /// Runs `lines` through the fabric, splitting `α` payloads with `split`.
    ///
    /// Returns the output lines or the first illegal switch operation
    /// encountered. The legality check is significant: it verifies at run
    /// time that every broadcast switch indeed pairs an `α` with an `ε`,
    /// which is exactly what Lemmas 2–5 promise.
    pub fn run<P, S: FnMut(P) -> (P, P)>(
        &self,
        lines: Vec<Line<P>>,
        split: &mut S,
    ) -> Result<Vec<Line<P>>, SwitchError> {
        assert_eq!(lines.len(), self.n);
        let mut lines = lines;
        for (j, stage) in self.stages.iter().enumerate() {
            run_stage_blocks(&mut lines, 0, self.n, j, stage, split)?;
        }
        Ok(lines)
    }

    /// [`RbnSettings::run_block`] against a precomputed [`RbnWiring`]: walks
    /// the stored `(upper, lower)` pair table instead of re-deriving the
    /// stage geometry, so a block run performs no heap allocation.
    ///
    /// A sub-RBN of size `2^k` at `base` occupies the *contiguous* switch
    /// index range `[base/2, (base + 2^k)/2)` of every stage `j < k` (drop
    /// bit `j` of the upper line's position), so one linear scan per stage
    /// covers exactly the block's switches in the same order as
    /// [`RbnSettings::run_block`].
    pub fn run_block_wired<P, S: FnMut(P) -> (P, P)>(
        &self,
        lines: &mut [Line<P>],
        base: usize,
        size: usize,
        wiring: &RbnWiring,
        split: &mut S,
    ) -> Result<(), SwitchError> {
        let k = log2_exact(size) as usize;
        assert_eq!(wiring.n(), self.n);
        assert!(base.is_multiple_of(size) && base + size <= self.n);
        for j in 0..k {
            let stage = &self.stages[j];
            let pairs = wiring.stage(j);
            for idx in base / 2..(base + size) / 2 {
                let (u, l) = pairs[idx];
                apply_in_place(lines, u as usize, l as usize, stage[idx], split)?;
            }
        }
        Ok(())
    }

    /// Runs only stages `[0, k)` on the block of lines `[base, base + 2^k)`,
    /// mutating in place. This is the primitive the feedback implementation
    /// (Section 7.3) uses: later passes reuse only the first stages of the
    /// single physical RBN, independently per block.
    ///
    /// Local stage `j` of the sub-network maps onto physical stage `j` of
    /// this settings table (sub-networks of an RBN occupy the *first*
    /// stages).
    pub fn run_block<P, S: FnMut(P) -> (P, P)>(
        &self,
        lines: &mut [Line<P>],
        base: usize,
        size: usize,
        split: &mut S,
    ) -> Result<(), SwitchError> {
        let k = log2_exact(size) as usize;
        assert!(base.is_multiple_of(size) && base + size <= self.n);
        for j in 0..k {
            run_stage_blocks(lines, base, size, j, &self.stages[j], split)?;
        }
        Ok(())
    }
}

/// The shuffle/exchange wiring of an `n × n` RBN, precomputed once: for every
/// stage `j` and global switch index `i`, the `(upper, lower)` line pair
/// meeting at that switch.
///
/// The pairs are pure address arithmetic (stage `j` pairs lines differing in
/// bit `j`), so the table never changes for a given `n`; building it at
/// network construction lets every subsequent route walk it allocation-free
/// via [`RbnSettings::run_block_wired`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RbnWiring {
    n: usize,
    /// `stages[j][i]` = lines entering switch `i` of stage `j`.
    stages: Vec<Vec<(u32, u32)>>,
}

impl RbnWiring {
    /// Builds the wiring table for an `n × n` RBN (`n` a power of two ≥ 2).
    pub fn new(n: usize) -> Self {
        let m = log2_exact(n) as usize;
        let mut stages = Vec::with_capacity(m);
        for j in 0..m {
            let mask = (1usize << j) - 1;
            stages.push(
                (0..n / 2)
                    .map(|i| {
                        let u = ((i & !mask) << 1) | (i & mask);
                        (u as u32, (u | (1 << j)) as u32)
                    })
                    .collect(),
            );
        }
        RbnWiring { n, stages }
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `(upper, lower)` line pairs of stage `j`, indexed by global switch
    /// index.
    #[inline]
    pub fn stage(&self, j: usize) -> &[(u32, u32)] {
        &self.stages[j]
    }
}

/// Applies stage `j` settings to the lines of `[base, base+size)`.
/// `stage_settings` is indexed by *global* switch index (line-pair position
/// divided appropriately), so both full-network and block-restricted runs
/// address the same physical switches.
fn run_stage_blocks<P, S: FnMut(P) -> (P, P)>(
    lines: &mut [Line<P>],
    base: usize,
    size: usize,
    j: usize,
    stage_settings: &[SwitchSetting],
    split: &mut S,
) -> Result<(), SwitchError> {
    for ms in rbn_stage_blocks(size, j as u32) {
        for i in 0..ms.switches() {
            let (u, l) = ms.pair(i);
            let (u, l) = (base + u, base + l);
            // Global switch index within the physical stage: drop bit j of
            // the upper line's position.
            let pos = u;
            let bit = 1usize << j;
            let idx = ((pos >> (j + 1)) << j) | (pos & (bit - 1));
            let setting = stage_settings[idx];
            apply_in_place(lines, u, l, setting, split)?;
        }
    }
    Ok(())
}

/// Applies one switch to lines `u` (upper) and `l` (lower) in place.
fn apply_in_place<P, S: FnMut(P) -> (P, P)>(
    lines: &mut [Line<P>],
    u: usize,
    l: usize,
    setting: SwitchSetting,
    split: &mut S,
) -> Result<(), SwitchError> {
    match setting {
        SwitchSetting::Parallel => Ok(()),
        SwitchSetting::Crossing => {
            lines.swap(u, l);
            Ok(())
        }
        SwitchSetting::UpperBroadcast => {
            if lines[u].tag != Tag::Alpha || lines[l].tag != Tag::Eps {
                return Err(SwitchError {
                    setting,
                    found: (lines[u].tag, lines[l].tag),
                });
            }
            let payload = std::mem::replace(&mut lines[u], Line::empty())
                .payload
                .expect("α line carries a payload");
            let (p0, p1) = split(payload);
            lines[u] = Line::with(Tag::Zero, p0);
            lines[l] = Line::with(Tag::One, p1);
            Ok(())
        }
        SwitchSetting::LowerBroadcast => {
            if lines[u].tag != Tag::Eps || lines[l].tag != Tag::Alpha {
                return Err(SwitchError {
                    setting,
                    found: (lines[u].tag, lines[l].tag),
                });
            }
            let payload = std::mem::replace(&mut lines[l], Line::empty())
                .payload
                .expect("α line carries a payload");
            let (p0, p1) = split(payload);
            lines[u] = Line::with(Tag::Zero, p0);
            lines[l] = Line::with(Tag::One, p1);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_switch::SwitchSetting::{Crossing, Parallel, UpperBroadcast};

    fn lines_of(tags: &[Tag]) -> Vec<Line<usize>> {
        tags.iter()
            .enumerate()
            .map(|(i, &t)| {
                if t == Tag::Eps {
                    Line::empty()
                } else {
                    Line::with(t, i)
                }
            })
            .collect()
    }

    #[test]
    fn identity_settings_pass_through() {
        let s = RbnSettings::identity(8);
        let input = lines_of(&[Tag::Zero; 8]);
        let out = s.run(input.clone(), &mut clone_split).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn crossing_last_stage_swaps_halves() {
        let mut s = RbnSettings::identity(4);
        for x in s.stage_mut(1) {
            *x = Crossing;
        }
        let input = lines_of(&[Tag::Zero, Tag::Zero, Tag::One, Tag::One]);
        let out = s.run(input, &mut clone_split).unwrap();
        let tags: Vec<Tag> = out.iter().map(|l| l.tag).collect();
        assert_eq!(tags, vec![Tag::One, Tag::One, Tag::Zero, Tag::Zero]);
        // Payload identities moved with the tags.
        assert_eq!(out[0].payload, Some(2));
        assert_eq!(out[2].payload, Some(0));
    }

    #[test]
    fn broadcast_duplicates_with_split() {
        let mut s = RbnSettings::identity(2);
        s.stage_mut(0)[0] = UpperBroadcast;
        let input = vec![Line::with(Tag::Alpha, 100usize), Line::empty()];
        let mut splitter = |p: usize| (p + 1, p + 2);
        let out = s.run(input, &mut splitter).unwrap();
        assert_eq!((out[0].tag, out[0].payload), (Tag::Zero, Some(101)));
        assert_eq!((out[1].tag, out[1].payload), (Tag::One, Some(102)));
    }

    #[test]
    fn illegal_broadcast_is_reported() {
        let mut s = RbnSettings::identity(2);
        s.stage_mut(0)[0] = UpperBroadcast;
        let input = lines_of(&[Tag::Zero, Tag::One]);
        let err = s.run(input, &mut clone_split).unwrap_err();
        assert_eq!(err.setting, UpperBroadcast);
        assert_eq!(err.found, (Tag::Zero, Tag::One));
    }

    #[test]
    fn set_block_addresses_stage_slices() {
        let mut s = RbnSettings::identity(8);
        // Stage 1 has blocks of 4 lines → 2 switches per block, 2 blocks.
        s.set_block(1, 1, &[Crossing, Crossing]);
        assert_eq!(s.stage(1), &[Parallel, Parallel, Crossing, Crossing]);
    }

    #[test]
    fn run_block_touches_only_its_block() {
        let mut s = RbnSettings::identity(8);
        for x in s.stage_mut(0) {
            *x = Crossing;
        }
        let mut lines = lines_of(&[
            Tag::Zero,
            Tag::One,
            Tag::Zero,
            Tag::One,
            Tag::Zero,
            Tag::One,
            Tag::Zero,
            Tag::One,
        ]);
        // Run a 2-line sub-network at base 2: only lines 2,3 swap.
        s.run_block(&mut lines, 2, 2, &mut clone_split).unwrap();
        let tags: Vec<Tag> = lines.iter().map(|l| l.tag).collect();
        assert_eq!(
            tags,
            vec![
                Tag::Zero,
                Tag::One,
                Tag::One,
                Tag::Zero,
                Tag::Zero,
                Tag::One,
                Tag::Zero,
                Tag::One
            ]
        );
    }

    #[test]
    fn wiring_matches_stage_geometry() {
        for n in [2usize, 4, 8, 32] {
            let wiring = RbnWiring::new(n);
            assert_eq!(wiring.n(), n);
            for j in 0..brsmn_topology::log2_exact(n) {
                let mut from_blocks = vec![(0u32, 0u32); n / 2];
                for ms in brsmn_topology::stage::rbn_stage_blocks(n, j) {
                    for i in 0..ms.switches() {
                        let (u, l) = ms.pair(i);
                        let bit = 1usize << j;
                        let idx = ((u >> (j + 1)) << j as usize) | (u & (bit - 1));
                        from_blocks[idx] = (u as u32, l as u32);
                    }
                }
                assert_eq!(wiring.stage(j as usize), &from_blocks[..], "n={n} j={j}");
            }
        }
    }

    #[test]
    fn run_block_wired_matches_run_block() {
        let n = 8;
        let wiring = RbnWiring::new(n);
        // A settings table exercising all stages: derived from a real plan.
        let plan = crate::plan::plan_bitsort(&[true, false, true, true, false, true, false, false], 3);
        for (base, size) in [(0usize, 8usize), (0, 4), (4, 4), (2, 2)] {
            let tags = [
                Tag::One,
                Tag::Zero,
                Tag::One,
                Tag::One,
                Tag::Zero,
                Tag::One,
                Tag::Zero,
                Tag::Zero,
            ];
            let mk = || -> Vec<Line<usize>> {
                tags.iter()
                    .enumerate()
                    .map(|(i, &t)| Line::with(t, i))
                    .collect()
            };
            let mut a = mk();
            let mut b = mk();
            plan.settings
                .run_block(&mut a, base, size, &mut clone_split)
                .unwrap();
            plan.settings
                .run_block_wired(&mut b, base, size, &wiring, &mut clone_split)
                .unwrap();
            assert_eq!(a, b, "base={base} size={size}");
        }
    }

    #[test]
    fn block_mut_writes_like_set_block() {
        let mut a = RbnSettings::identity(8);
        let mut b = RbnSettings::identity(8);
        a.set_block(1, 1, &[Crossing, UpperBroadcast]);
        b.block_mut(1, 1).copy_from_slice(&[Crossing, UpperBroadcast]);
        assert_eq!(a, b);
    }

    #[test]
    fn active_switch_count() {
        let mut s = RbnSettings::identity(4);
        assert_eq!(s.active_switches(), 0);
        s.stage_mut(0)[1] = Crossing;
        s.stage_mut(1)[0] = UpperBroadcast;
        assert_eq!(s.active_switches(), 2);
    }
}
