//! Compact switch settings `W^{n'/2}_{…}` and the parallel setting routines
//! of Table 5 (`BinaryCompactSetting` / `TrinaryCompactSetting`).
//!
//! A merging stage of an `n' × n'` (sub-)RBN contains `n'/2` switches; the
//! lemmas of the paper only ever require *circular compact* arrangements of
//! their settings, so the whole stage is described by at most three run
//! descriptors. These functions expand a descriptor into the per-switch
//! setting vector, exactly as each switch would compute it locally from its
//! own address (Table 5: all switches set simultaneously in parallel).

use crate::sequence::in_gamma_run;
use brsmn_switch::SwitchSetting;

/// `BinaryCompactSetting(n', s, l, setting1, setting2)` of Table 5: realizes
/// `W^{n'/2}_{s,l; setting1, setting2}` — `l` consecutive switches (circular,
/// starting at `s`) get `setting2`, the rest get `setting1`.
///
/// Returns the settings for the `n'/2` switches of the stage.
pub fn binary_compact_setting(
    n_prime: usize,
    s: usize,
    l: usize,
    setting1: SwitchSetting,
    setting2: SwitchSetting,
) -> Vec<SwitchSetting> {
    let half = n_prime / 2;
    assert!(s < half || (s == 0 && half == 0), "s={s} out of range for n'={n_prime}");
    assert!(l <= half, "l={l} out of range for n'={n_prime}");
    (0..half)
        .map(|i| {
            if in_gamma_run(half, s, l, i) {
                setting2
            } else {
                setting1
            }
        })
        .collect()
}

/// `TrinaryCompactSetting(n', s, l, setting1, setting2, setting3)` of Table 5:
/// realizes `W^{n'/2}_{s, l, n'/2−s−l; setting1, setting2, setting3}` —
/// switches `[s, s+l)` get `setting2`, switches `[s+l, n'/2)` get `setting3`,
/// and switches `[0, s)` get `setting1`.
///
/// Requires `s + l ≤ n'/2` (the third run fills to the end of the stage, so
/// nothing wraps). This is exactly the shape Lemmas 2–5 need in their
/// boundary-crossing cases.
pub fn trinary_compact_setting(
    n_prime: usize,
    s: usize,
    l: usize,
    setting1: SwitchSetting,
    setting2: SwitchSetting,
    setting3: SwitchSetting,
) -> Vec<SwitchSetting> {
    let half = n_prime / 2;
    assert!(
        s + l <= half,
        "trinary setting requires s + l <= n'/2 (s={s}, l={l}, n'={n_prime})"
    );
    (0..half)
        .map(|i| {
            if i < s {
                setting1
            } else if i < s + l {
                setting2
            } else {
                setting3
            }
        })
        .collect()
}

/// [`binary_compact_setting`] writing into a caller-provided stage slice
/// (`out.len()` switches, i.e. `n' = 2·out.len()`) instead of allocating.
///
/// The circular run is at most two contiguous spans, so this is three slice
/// fills — the form the zero-allocation planners in [`crate::bitplan`] use.
pub fn binary_compact_setting_into(
    out: &mut [SwitchSetting],
    s: usize,
    l: usize,
    setting1: SwitchSetting,
    setting2: SwitchSetting,
) {
    let half = out.len();
    assert!(
        s < half || (s == 0 && half == 0),
        "s={s} out of range for {half} switches"
    );
    assert!(l <= half, "l={l} out of range for {half} switches");
    let end = s + l;
    if end <= half {
        out[..s].fill(setting1);
        out[s..end].fill(setting2);
        out[end..].fill(setting1);
    } else {
        let wrap = end - half;
        out[..wrap].fill(setting2);
        out[wrap..s].fill(setting1);
        out[s..].fill(setting2);
    }
}

/// [`trinary_compact_setting`] writing into a caller-provided stage slice.
/// Requires `s + l ≤ out.len()` (nothing wraps), as in Table 5.
pub fn trinary_compact_setting_into(
    out: &mut [SwitchSetting],
    s: usize,
    l: usize,
    setting1: SwitchSetting,
    setting2: SwitchSetting,
    setting3: SwitchSetting,
) {
    let half = out.len();
    assert!(
        s + l <= half,
        "trinary setting requires s + l <= {half} switches (s={s}, l={l})"
    );
    out[..s].fill(setting1);
    out[s..s + l].fill(setting2);
    out[s + l..].fill(setting3);
}

#[cfg(test)]
mod tests {
    use super::*;
    use brsmn_switch::SwitchSetting::{Crossing, LowerBroadcast, Parallel, UpperBroadcast};

    #[test]
    fn binary_no_wrap() {
        let v = binary_compact_setting(8, 1, 2, Parallel, Crossing);
        assert_eq!(v, vec![Parallel, Crossing, Crossing, Parallel]);
    }

    #[test]
    fn binary_wraps_circularly() {
        let v = binary_compact_setting(8, 3, 2, Parallel, UpperBroadcast);
        assert_eq!(
            v,
            vec![UpperBroadcast, Parallel, Parallel, UpperBroadcast]
        );
    }

    #[test]
    fn binary_degenerate_l_zero_and_full() {
        assert_eq!(
            binary_compact_setting(8, 2, 0, Parallel, Crossing),
            vec![Parallel; 4]
        );
        assert_eq!(
            binary_compact_setting(8, 2, 4, Parallel, Crossing),
            vec![Crossing; 4]
        );
    }

    #[test]
    fn trinary_three_runs() {
        let v = trinary_compact_setting(8, 1, 2, Crossing, UpperBroadcast, Parallel);
        assert_eq!(
            v,
            vec![Crossing, UpperBroadcast, UpperBroadcast, Parallel]
        );
    }

    #[test]
    fn trinary_empty_middle_run() {
        let v = trinary_compact_setting(8, 2, 0, Parallel, LowerBroadcast, Crossing);
        assert_eq!(v, vec![Parallel, Parallel, Crossing, Crossing]);
    }

    #[test]
    #[should_panic]
    fn trinary_rejects_wrap() {
        let _ = trinary_compact_setting(8, 3, 2, Parallel, UpperBroadcast, Crossing);
    }

    #[test]
    fn into_variants_match_allocating_variants() {
        for n_prime in [2usize, 4, 8, 16] {
            let half = n_prime / 2;
            let mut buf = vec![Parallel; half];
            for s in 0..half {
                for l in 0..=half {
                    let want = binary_compact_setting(n_prime, s, l, Parallel, Crossing);
                    binary_compact_setting_into(&mut buf, s, l, Parallel, Crossing);
                    assert_eq!(buf, want, "binary n'={n_prime} s={s} l={l}");
                    if s + l <= half {
                        let want = trinary_compact_setting(
                            n_prime,
                            s,
                            l,
                            Crossing,
                            UpperBroadcast,
                            Parallel,
                        );
                        trinary_compact_setting_into(
                            &mut buf,
                            s,
                            l,
                            Crossing,
                            UpperBroadcast,
                            Parallel,
                        );
                        assert_eq!(buf, want, "trinary n'={n_prime} s={s} l={l}");
                    }
                }
            }
        }
    }

    #[test]
    fn smallest_stage_single_switch() {
        assert_eq!(
            binary_compact_setting(2, 0, 1, Parallel, Crossing),
            vec![Crossing]
        );
        assert_eq!(
            binary_compact_setting(2, 0, 0, Parallel, Crossing),
            vec![Parallel]
        );
    }
}
