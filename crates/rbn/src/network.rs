//! High-level, one-call interfaces to the three roles an RBN plays in the
//! multicast network: bit sorter (Theorem 1), scatter network (Theorems 2–3)
//! and quasisorting network (Section 5.2).

use crate::fabric::{clone_split, RbnSettings};
use crate::plan::{plan_bitsort, plan_quasisort, plan_scatter, PlanError, ScatterNode};
use brsmn_switch::{Line, SwitchError, Tag};
use brsmn_topology::{check_size, SizeError};
use std::fmt;

/// Any failure of an RBN operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RbnError {
    /// Invalid network size.
    Size(SizeError),
    /// Input tags violated a planner precondition.
    Plan(PlanError),
    /// A switch received an illegal operation — indicates a violated lemma
    /// (never happens for inputs satisfying the documented preconditions).
    Switch(SwitchError),
}

impl fmt::Display for RbnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbnError::Size(e) => e.fmt(f),
            RbnError::Plan(e) => e.fmt(f),
            RbnError::Switch(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for RbnError {}

impl From<SizeError> for RbnError {
    fn from(e: SizeError) -> Self {
        RbnError::Size(e)
    }
}
impl From<PlanError> for RbnError {
    fn from(e: PlanError) -> Self {
        RbnError::Plan(e)
    }
}
impl From<SwitchError> for RbnError {
    fn from(e: SwitchError) -> Self {
        RbnError::Switch(e)
    }
}

/// An `n × n` reverse banyan network operated as a **bit sorter**: inputs
/// tagged `0`/`1` leave as the compact run `C^n_{s, n_1; 0, 1}`.
#[derive(Debug, Clone, Copy)]
pub struct BitSortingRbn {
    n: usize,
}

impl BitSortingRbn {
    /// Creates a sorter of size `n = 2^m`.
    pub fn new(n: usize) -> Result<Self, RbnError> {
        check_size(n)?;
        Ok(Self { n })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sorts `lines` (every tag must be `0` or `1`) so that the `1`s occupy
    /// the circular run starting at `s` — `s = n/2` gives the ascending sort.
    pub fn sort<P: Clone>(
        &self,
        lines: Vec<Line<P>>,
        s: usize,
    ) -> Result<Vec<Line<P>>, RbnError> {
        assert_eq!(lines.len(), self.n);
        assert!(
            lines.iter().all(|l| l.tag.is_chi()),
            "bit sorting requires all tags in {{0, 1}}"
        );
        let gamma: Vec<bool> = lines.iter().map(|l| l.tag == Tag::One).collect();
        let plan = plan_bitsort(&gamma, s);
        Ok(plan.settings.run(lines, &mut clone_split)?)
    }

    /// The switch settings the distributed algorithm would compute, without
    /// running the data path.
    pub fn settings(&self, gamma: &[bool], s: usize) -> RbnSettings {
        assert_eq!(gamma.len(), self.n);
        plan_bitsort(gamma, s).settings
    }
}

/// An `n × n` RBN operated as a **scatter network**: pairs of `α` and `ε`
/// inputs are eliminated into `0`/`1` message copies; the surplus of the
/// dominating type is compacted at a chosen position (Theorem 3).
#[derive(Debug, Clone, Copy)]
pub struct ScatterRbn {
    n: usize,
}

impl ScatterRbn {
    /// Creates a scatter network of size `n = 2^m`.
    pub fn new(n: usize) -> Result<Self, RbnError> {
        check_size(n)?;
        Ok(Self { n })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Scatters `lines`, eliminating `min(nα, nε)` α/ε pairs. `α` payloads
    /// are divided by `split` into their `0`- and `1`-tagged copies. The
    /// surplus run of the dominating type starts at output position `s`.
    ///
    /// Returns the output lines and the root summary (dominating type and
    /// surplus length).
    pub fn scatter<P, S: FnMut(P) -> (P, P)>(
        &self,
        lines: Vec<Line<P>>,
        s: usize,
        split: &mut S,
    ) -> Result<(Vec<Line<P>>, ScatterNode), RbnError> {
        assert_eq!(lines.len(), self.n);
        let tags: Vec<Tag> = lines.iter().map(|l| l.tag).collect();
        let plan = plan_scatter(&tags, s);
        let root = plan.root();
        let out = plan.settings.run(lines, split)?;
        Ok((out, root))
    }
}

/// An `n × n` RBN operated as a **quasisorting network**: inputs tagged
/// `{0, 1, ε}` (each message tag at most `n/2` times) leave with all `0`s in
/// the upper half of the outputs and all `1`s in the lower half (Section 5.2).
#[derive(Debug, Clone, Copy)]
pub struct QuasisortRbn {
    n: usize,
}

impl QuasisortRbn {
    /// Creates a quasisorter of size `n = 2^m`.
    pub fn new(n: usize) -> Result<Self, RbnError> {
        check_size(n)?;
        Ok(Self { n })
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Quasisorts `lines`: runs the ε-dividing algorithm, then the bit sort
    /// on real-plus-dummy sort bits with `s = n/2`.
    pub fn quasisort<P: Clone>(&self, lines: Vec<Line<P>>) -> Result<Vec<Line<P>>, RbnError> {
        assert_eq!(lines.len(), self.n);
        let tags: Vec<Tag> = lines.iter().map(|l| l.tag).collect();
        let (_, sort) = plan_quasisort(&tags)?;
        Ok(sort.settings.run(lines, &mut clone_split)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_validated() {
        assert!(BitSortingRbn::new(6).is_err());
        assert!(ScatterRbn::new(0).is_err());
        assert!(QuasisortRbn::new(3).is_err());
        assert!(BitSortingRbn::new(16).is_ok());
    }

    #[test]
    fn bitsort_api_sorts_ascending() {
        let net = BitSortingRbn::new(8).unwrap();
        let lines: Vec<Line<usize>> = [1u8, 1, 0, 1, 0, 0, 1, 0]
            .iter()
            .enumerate()
            .map(|(i, &b)| Line::with(if b == 1 { Tag::One } else { Tag::Zero }, i))
            .collect();
        let out = net.sort(lines, 4).unwrap();
        let tags: Vec<Tag> = out.iter().map(|l| l.tag).collect();
        assert_eq!(
            tags,
            vec![
                Tag::Zero,
                Tag::Zero,
                Tag::Zero,
                Tag::Zero,
                Tag::One,
                Tag::One,
                Tag::One,
                Tag::One
            ]
        );
    }

    #[test]
    fn scatter_api_reports_root() {
        let net = ScatterRbn::new(4).unwrap();
        let lines: Vec<Line<u8>> = vec![
            Line::with(Tag::Alpha, 9),
            Line::empty(),
            Line::with(Tag::Zero, 7),
            Line::empty(),
        ];
        let (out, root) = net
            .scatter(lines, 0, &mut |p: u8| (p, p + 1))
            .unwrap();
        assert_eq!(root.l, 1);
        assert_eq!(out.iter().filter(|l| l.tag == Tag::Eps).count(), 1);
        assert!(out.iter().all(|l| l.tag != Tag::Alpha));
        // The split closure was used: copies 9 and 10 both present.
        let mut payloads: Vec<u8> = out.iter().filter_map(|l| l.payload).collect();
        payloads.sort_unstable();
        assert_eq!(payloads, vec![7, 9, 10]);
    }

    #[test]
    fn quasisort_api_separates_halves() {
        let net = QuasisortRbn::new(4).unwrap();
        let lines: Vec<Line<u8>> = vec![
            Line::with(Tag::One, 1),
            Line::with(Tag::Zero, 0),
            Line::empty(),
            Line::with(Tag::One, 2),
        ];
        let out = net.quasisort(lines).unwrap();
        // All 0s in the upper half, all 1s in the lower half; ε positions free.
        assert!(out[..2].iter().all(|l| l.tag != Tag::One));
        assert!(out[2..].iter().all(|l| l.tag == Tag::One));
        assert_eq!(out[..2].iter().filter(|l| l.tag == Tag::Zero).count(), 1);
    }
}
