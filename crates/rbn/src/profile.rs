//! Per-op planning profiler: where does cold-path planning time go?
//!
//! The packed planners spend their time in four places — packing tag planes,
//! extracting rank-queryable planes, the scatter backward wave, and the
//! (fused) quasisort backward wave. [`PlanOpProfile`] tallies each:
//!
//! * **op counts are always on** — they are closed-form per wave (so many
//!   plane words packed, so many segment counts per level, so many tree
//!   nodes settled) plus an increment per tie-resolution walk step, and cost
//!   a handful of adds per *block*, not per op;
//! * **nanosecond totals are feature-gated** behind the `plan-profile`
//!   cargo feature. Without the feature every timestamp read compiles to a
//!   zero constant, keeping the planners byte-for-byte as fast as before
//!   (pinned by the `alloc-count` gate running with the feature both on and
//!   off). With the feature, each phase is timed at *wave* granularity — one
//!   clock read per phase per block — so the profile overhead never
//!   perturbs the ops it measures.
//!
//! Category map (documented here once; the planners reference it):
//!
//! | category     | ops                                            | nanos |
//! |--------------|------------------------------------------------|-------|
//! | `tag_derive` | tags packed into the two bit planes            | plane-packing fills (`set_tags` / SoA `load_frame`) |
//! | `rank`       | segment-count queries issued by the waves (incl. tie-walk steps) | plane extraction / derivation (the rank infrastructure the queries run on) |
//! | `scatter`    | tree nodes settled by Table 4 waves            | scatter backward waves |
//! | `quasisort`  | tree nodes settled by Table 6 + 3 fused waves  | quasisort backward waves (incl. the Eq. 2 pre-checks) |
//!
//! The profile rides [`StageTimer`](../../brsmn_core/engine/struct.StageTimer.html)
//! through every merge the engine already does, so it flows `bitplan` →
//! `BatchPlanner` → `EngineStats` → `ServeReport` → `bench_report` without
//! any new plumbing at the aggregation layers.

use serde::{Deserialize, Serialize};

/// Tallies of the four planning-op categories: counts (always exact) and
/// nanosecond totals (zero unless the `plan-profile` feature is enabled).
/// See the [module docs](self) for what each category covers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanOpProfile {
    /// Tags packed into the two bit planes.
    pub tag_derive_ops: u64,
    /// Nanoseconds spent packing tag planes (0 unless `plan-profile`).
    pub tag_derive_nanos: u64,
    /// Segment-count queries issued by the backward waves, including every
    /// tie-resolution walk step.
    pub rank_ops: u64,
    /// Nanoseconds spent extracting/deriving the rank-queryable planes
    /// (0 unless `plan-profile`).
    pub rank_nanos: u64,
    /// Tree nodes settled by scatter (Table 4) backward waves.
    pub scatter_ops: u64,
    /// Nanoseconds spent in scatter backward waves (0 unless `plan-profile`).
    pub scatter_nanos: u64,
    /// Tree nodes settled by quasisort (Table 6 + Table 3 fused) waves.
    pub quasisort_ops: u64,
    /// Nanoseconds spent in quasisort waves (0 unless `plan-profile`).
    pub quasisort_nanos: u64,
}

impl PlanOpProfile {
    /// An all-zero profile.
    pub fn new() -> Self {
        PlanOpProfile::default()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        *self == PlanOpProfile::default()
    }

    /// Total op count across all four categories.
    pub fn total_ops(&self) -> u64 {
        self.tag_derive_ops + self.rank_ops + self.scatter_ops + self.quasisort_ops
    }

    /// Total nanoseconds across all four categories (0 unless the
    /// `plan-profile` feature timed them).
    pub fn total_nanos(&self) -> u64 {
        self.tag_derive_nanos + self.rank_nanos + self.scatter_nanos + self.quasisort_nanos
    }

    /// Adds `other`'s tallies into `self` (the engine's stats merges).
    pub fn merge(&mut self, other: &PlanOpProfile) {
        self.tag_derive_ops += other.tag_derive_ops;
        self.tag_derive_nanos += other.tag_derive_nanos;
        self.rank_ops += other.rank_ops;
        self.rank_nanos += other.rank_nanos;
        self.scatter_ops += other.scatter_ops;
        self.scatter_nanos += other.scatter_nanos;
        self.quasisort_ops += other.quasisort_ops;
        self.quasisort_nanos += other.quasisort_nanos;
    }
}

/// A phase clock that is a real [`std::time::Instant`] with the
/// `plan-profile` feature and a zero-sized no-op without it — the planners
/// call it unconditionally and the compiler erases it when the feature is
/// off.
#[derive(Clone, Copy)]
pub(crate) struct ProfClock {
    #[cfg(feature = "plan-profile")]
    t0: std::time::Instant,
}

impl ProfClock {
    /// Reads the clock (a no-op without `plan-profile`).
    #[inline]
    pub(crate) fn start() -> Self {
        ProfClock {
            #[cfg(feature = "plan-profile")]
            t0: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since [`ProfClock::start`] (always 0 without
    /// `plan-profile`).
    #[inline]
    pub(crate) fn elapsed_nanos(self) -> u64 {
        #[cfg(feature = "plan-profile")]
        {
            self.t0.elapsed().as_nanos() as u64
        }
        #[cfg(not(feature = "plan-profile"))]
        {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_field() {
        let a = PlanOpProfile {
            tag_derive_ops: 1,
            tag_derive_nanos: 2,
            rank_ops: 3,
            rank_nanos: 4,
            scatter_ops: 5,
            scatter_nanos: 6,
            quasisort_ops: 7,
            quasisort_nanos: 8,
        };
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.total_ops(), 2 * (1 + 3 + 5 + 7));
        assert_eq!(b.total_nanos(), 2 * (2 + 4 + 6 + 8));
        assert!(!b.is_empty());
        assert!(PlanOpProfile::new().is_empty());
    }

    #[test]
    fn serde_round_trips() {
        let p = PlanOpProfile {
            rank_ops: 42,
            ..PlanOpProfile::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        let back: PlanOpProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
