//! Bit-packed switch-setting storage: 2 bits per [`SwitchSetting`], 32
//! settings per `u64` word, one contiguous allocation.
//!
//! A planned RBN stage is a run of 2×2 switch settings, and a setting is one
//! of exactly four values — so a full per-level/per-stage setting tensor
//! packs 16× denser than the `Vec<SwitchSetting>` tables of
//! [`crate::fabric::RbnSettings`]. `brsmn-core`'s plan-capture cache stores
//! every plane of a routed frame in one [`PackedSettings`] arena and replays
//! it later without re-running any planning sweep.

use brsmn_switch::SwitchSetting;
use serde::{Deserialize, Serialize};

/// The canonical 2-bit code of a setting. Stable across versions: captured
/// plans serialized elsewhere rely on this mapping.
#[inline]
pub fn setting_code(s: SwitchSetting) -> u64 {
    match s {
        SwitchSetting::Parallel => 0,
        SwitchSetting::Crossing => 1,
        SwitchSetting::UpperBroadcast => 2,
        SwitchSetting::LowerBroadcast => 3,
    }
}

/// Inverse of [`setting_code`] (only the low 2 bits of `code` are read).
#[inline]
pub fn setting_from_code(code: u64) -> SwitchSetting {
    match code & 3 {
        0 => SwitchSetting::Parallel,
        1 => SwitchSetting::Crossing,
        2 => SwitchSetting::UpperBroadcast,
        _ => SwitchSetting::LowerBroadcast,
    }
}

/// A fixed-length array of [`SwitchSetting`]s packed 2 bits each into `u64`
/// words — one contiguous allocation, `Clone`-cheap relative to the unpacked
/// tables it snapshots.
///
/// Serializes as the raw `(words, len)` pair — the stable 2-bit code
/// mapping above is what makes persisted arenas portable. Deserialization
/// is unchecked; consumers of untrusted bytes must call
/// [`PackedSettings::invariants_ok`] before indexing.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PackedSettings {
    words: Vec<u64>,
    len: usize,
}

impl PackedSettings {
    /// A packed array of `len` settings, all [`SwitchSetting::Parallel`]
    /// (code 0).
    pub fn with_len(len: usize) -> Self {
        PackedSettings {
            words: vec![0u64; len.div_ceil(32)],
            len,
        }
    }

    /// Number of settings stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no settings are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw 2-bit code at `i`.
    #[inline]
    pub fn code(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        self.words[i >> 5] >> ((i & 31) << 1) & 3
    }

    /// The setting at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> SwitchSetting {
        setting_from_code(self.code(i))
    }

    /// Stores `s` at `i`.
    #[inline]
    pub fn set(&mut self, i: usize, s: SwitchSetting) {
        debug_assert!(i < self.len);
        let sh = (i & 31) << 1;
        let w = &mut self.words[i >> 5];
        *w = (*w & !(3u64 << sh)) | (setting_code(s) << sh);
    }

    /// Packs `src` into positions `[offset, offset + src.len())`.
    pub fn store_slice(&mut self, offset: usize, src: &[SwitchSetting]) {
        for (k, &s) in src.iter().enumerate() {
            self.set(offset + k, s);
        }
    }

    /// Unpacks positions `[offset, offset + dst.len())` into `dst`.
    pub fn load_slice(&self, offset: usize, dst: &mut [SwitchSetting]) {
        for (k, d) in dst.iter_mut().enumerate() {
            *d = self.get(offset + k);
        }
    }

    /// Heap bytes reserved by the word buffer.
    pub fn footprint_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// `true` when the word buffer is exactly sized for `len` settings —
    /// the invariant every constructor upholds and a deserialized value
    /// must be checked against (indexing a short buffer would panic).
    pub fn invariants_ok(&self) -> bool {
        self.words.len() == self.len.div_ceil(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [SwitchSetting; 4] = [
        SwitchSetting::Parallel,
        SwitchSetting::Crossing,
        SwitchSetting::UpperBroadcast,
        SwitchSetting::LowerBroadcast,
    ];

    #[test]
    fn codes_round_trip() {
        for s in ALL {
            assert_eq!(setting_from_code(setting_code(s)), s);
        }
        // The mapping is pinned — captured plans depend on it.
        assert_eq!(setting_code(SwitchSetting::Parallel), 0);
        assert_eq!(setting_code(SwitchSetting::Crossing), 1);
        assert_eq!(setting_code(SwitchSetting::UpperBroadcast), 2);
        assert_eq!(setting_code(SwitchSetting::LowerBroadcast), 3);
    }

    #[test]
    fn set_get_across_word_boundaries() {
        for len in [1usize, 31, 32, 33, 64, 100] {
            let mut p = PackedSettings::with_len(len);
            assert_eq!(p.len(), len);
            let want: Vec<SwitchSetting> = (0..len).map(|i| ALL[(i * 7 + 3) % 4]).collect();
            for (i, &s) in want.iter().enumerate() {
                p.set(i, s);
            }
            for (i, &s) in want.iter().enumerate() {
                assert_eq!(p.get(i), s, "len={len} i={i}");
            }
        }
    }

    #[test]
    fn slices_round_trip_at_offsets() {
        let mut p = PackedSettings::with_len(96);
        let src = [
            SwitchSetting::LowerBroadcast,
            SwitchSetting::Crossing,
            SwitchSetting::UpperBroadcast,
        ];
        p.store_slice(30, &src); // straddles the first word boundary
        let mut dst = [SwitchSetting::Parallel; 3];
        p.load_slice(30, &mut dst);
        assert_eq!(dst, src);
        // Neighbours untouched.
        assert_eq!(p.get(29), SwitchSetting::Parallel);
        assert_eq!(p.get(33), SwitchSetting::Parallel);
    }

    #[test]
    fn footprint_is_one_word_per_32() {
        let p = PackedSettings::with_len(256);
        assert_eq!(p.footprint_bytes(), 8 * 8);
        assert!(PackedSettings::with_len(0).is_empty());
    }
}
