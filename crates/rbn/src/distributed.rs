//! Event-driven **message-passing** execution of the distributed algorithms
//! (Section 6, Fig. 8) — an implementation independent of the array-based
//! planners in [`crate::plan`], used to cross-validate them and to measure
//! parallel round counts.
//!
//! The binary tree embedded in an RBN (Fig. 8a) is materialized as explicit
//! nodes exchanging messages: leaves emit their forward values; an internal
//! node fires its forward message when both children's values have arrived;
//! the root turns around with the backward value; an internal node fires its
//! two backward messages (and sets its merging-stage switches) when its
//! backward input arrives. Delivery is simulated in synchronous *rounds* —
//! one tree level per round — so the measured round count is exactly the
//! `2·log n` the pipelined-latency model of `brsmn-sim` assumes.
//!
//! The node-local computations are verbatim Tables 3, 4 and 6; nothing is
//! shared with `plan.rs` except the compact-setting expansion of Table 5.

use crate::fabric::RbnSettings;
use crate::plan::{DomType, ScatterNode};
use crate::setting::{binary_compact_setting, trinary_compact_setting};
use brsmn_switch::{QTag, SwitchSetting, Tag};
use brsmn_topology::log2_exact;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Statistics of one message-passing execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepStats {
    /// Synchronous rounds of the forward wave (leaves → root).
    pub forward_rounds: u64,
    /// Synchronous rounds of the backward wave (root → leaves).
    pub backward_rounds: u64,
    /// Total point-to-point messages exchanged.
    pub messages: u64,
}

/// Node-local behaviour of one distributed algorithm: how forward values
/// combine, and what a node emits downward / programs into its stage.
trait NodeAlgebra {
    /// Forward value flowing leaves → root.
    type Fwd: Clone;
    /// Backward value flowing root → leaves.
    type Bwd: Clone;

    /// Combines the children's forward values (Table 3/4/6 forward phase).
    fn combine(&self, upper: &Self::Fwd, lower: &Self::Fwd) -> Self::Fwd;

    /// Backward phase at a node of size `n_prime`: from the children's
    /// forward values and the node's backward input, produce the children's
    /// backward values and (optionally) this node's merging-stage settings.
    fn descend(
        &self,
        n_prime: usize,
        upper: &Self::Fwd,
        lower: &Self::Fwd,
        back: &Self::Bwd,
    ) -> (Self::Bwd, Self::Bwd, Option<Vec<SwitchSetting>>);
}

/// Generic synchronous-round executor over the Fig. 8a tree.
fn run_sweeps<A: NodeAlgebra>(
    algebra: &A,
    leaves: Vec<A::Fwd>,
    root_back: impl FnOnce(&A::Fwd) -> A::Bwd,
) -> (Vec<A::Bwd>, Option<RbnSettings>, SweepStats) {
    let n = leaves.len();
    let m = log2_exact(n) as usize;
    let mut stats = SweepStats {
        forward_rounds: 0,
        backward_rounds: 0,
        messages: 0,
    };

    // Forward wave, one tree level per round.
    let mut fwd: Vec<Vec<A::Fwd>> = Vec::with_capacity(m + 1);
    fwd.push(leaves);
    for j in 1..=m {
        let prev = &fwd[j - 1];
        let level: Vec<A::Fwd> = (0..n >> j)
            .map(|b| algebra.combine(&prev[2 * b], &prev[2 * b + 1]))
            .collect();
        stats.messages += 2 * (n >> j) as u64;
        stats.forward_rounds += 1;
        fwd.push(level);
    }

    // Turnaround at the root.
    let root = root_back(&fwd[m][0]);

    // Backward wave: a work queue of (level, block, value) pairs delivered
    // level by level.
    let mut settings = if m > 0 {
        Some(RbnSettings::identity(n))
    } else {
        None
    };
    let mut queue: VecDeque<(usize, usize, A::Bwd)> = VecDeque::new();
    queue.push_back((m, 0, root));
    let mut leaf_back: Vec<Option<A::Bwd>> = vec![None; n];
    let mut current_level = m;
    while let Some((j, b, back)) = queue.pop_front() {
        if j < current_level {
            current_level = j;
        }
        if j == 0 {
            leaf_back[b] = Some(back);
            continue;
        }
        let upper = &fwd[j - 1][2 * b];
        let lower = &fwd[j - 1][2 * b + 1];
        let (bu, bl, block_settings) = algebra.descend(1 << j, upper, lower, &back);
        if let (Some(s), Some(block)) = (settings.as_mut(), block_settings) {
            s.set_block(j - 1, b, &block);
        }
        stats.messages += 2;
        queue.push_back((j - 1, 2 * b, bu));
        queue.push_back((j - 1, 2 * b + 1, bl));
    }
    stats.backward_rounds = m as u64;

    (
        leaf_back.into_iter().map(|x| x.expect("delivered")).collect(),
        settings,
        stats,
    )
}

// ---------------------------------------------------------------------------
// Table 3: bit sorting.
// ---------------------------------------------------------------------------

struct BitsortAlgebra;

impl NodeAlgebra for BitsortAlgebra {
    type Fwd = usize; // l: number of γs below
    type Bwd = usize; // s: starting position

    fn combine(&self, upper: &usize, lower: &usize) -> usize {
        upper + lower
    }

    fn descend(
        &self,
        n_prime: usize,
        upper: &usize,
        _lower: &usize,
        back: &usize,
    ) -> (usize, usize, Option<Vec<SwitchSetting>>) {
        let half = n_prime / 2;
        let (s, l0) = (*back, *upper);
        let s0 = s % half;
        let s1 = (s + l0) % half;
        let b = ((s + l0) / half) % 2;
        let (b_val, b_comp) = if b == 1 {
            (SwitchSetting::Crossing, SwitchSetting::Parallel)
        } else {
            (SwitchSetting::Parallel, SwitchSetting::Crossing)
        };
        let block = binary_compact_setting(n_prime, 0, s1, b_comp, b_val);
        (s0, s1, Some(block))
    }
}

/// Message-passing execution of the Table 3 bit-sorting algorithm. Returns
/// the switch settings and sweep statistics.
pub fn distributed_bitsort(gamma: &[bool], s_target: usize) -> (RbnSettings, SweepStats) {
    let leaves: Vec<usize> = gamma.iter().map(|&g| g as usize).collect();
    let (_, settings, stats) = run_sweeps(&BitsortAlgebra, leaves, |_| s_target);
    (settings.expect("n >= 2"), stats)
}

// ---------------------------------------------------------------------------
// Table 4: scattering.
// ---------------------------------------------------------------------------

struct ScatterAlgebra;

impl NodeAlgebra for ScatterAlgebra {
    type Fwd = ScatterNode;
    type Bwd = usize;

    fn combine(&self, c0: &ScatterNode, c1: &ScatterNode) -> ScatterNode {
        if c0.ty == c1.ty {
            ScatterNode {
                l: c0.l + c1.l,
                ty: c0.ty,
            }
        } else if c0.l >= c1.l {
            ScatterNode {
                l: c0.l - c1.l,
                ty: c0.ty,
            }
        } else {
            ScatterNode {
                l: c1.l - c0.l,
                ty: c1.ty,
            }
        }
    }

    fn descend(
        &self,
        n_prime: usize,
        c0: &ScatterNode,
        c1: &ScatterNode,
        back: &usize,
    ) -> (usize, usize, Option<Vec<SwitchSetting>>) {
        let half = n_prime / 2;
        let s = *back;
        let l = self.combine(c0, c1).l;
        if c0.ty == c1.ty {
            let s0 = s % half;
            let s1 = (s + c0.l) % half;
            let b = ((s + c0.l) / half) % 2;
            let (b_val, b_comp) = if b == 1 {
                (SwitchSetting::Crossing, SwitchSetting::Parallel)
            } else {
                (SwitchSetting::Parallel, SwitchSetting::Crossing)
            };
            let block = binary_compact_setting(n_prime, 0, s1, b_comp, b_val);
            (s0, s1, Some(block))
        } else {
            let bcast = if c0.ty == DomType::Alpha {
                SwitchSetting::UpperBroadcast
            } else {
                SwitchSetting::LowerBroadcast
            };
            let (s0, s1, s_tmp, l_tmp, ucast) = if c0.l >= c1.l {
                let s0 = s % half;
                let s1 = (s + l) % half;
                (s0, s1, s1, c1.l, SwitchSetting::Parallel)
            } else {
                let s0 = (s + l) % half;
                let s1 = s % half;
                (s0, s1, s0, c0.l, SwitchSetting::Crossing)
            };
            let ucomp = ucast.complement();
            let block = if s + l < half {
                binary_compact_setting(n_prime, s_tmp, l_tmp, ucast, bcast)
            } else if s < half {
                trinary_compact_setting(n_prime, s_tmp, l_tmp, ucomp, bcast, ucast)
            } else if s + l < n_prime {
                binary_compact_setting(n_prime, s_tmp, l_tmp, ucomp, bcast)
            } else {
                trinary_compact_setting(n_prime, s_tmp, l_tmp, ucast, bcast, ucomp)
            };
            (s0, s1, Some(block))
        }
    }
}

/// Message-passing execution of the Table 4 scatter algorithm.
pub fn distributed_scatter(tags: &[Tag], s_target: usize) -> (RbnSettings, SweepStats) {
    let leaves: Vec<ScatterNode> = tags
        .iter()
        .map(|&t| match t {
            Tag::Alpha => ScatterNode {
                l: 1,
                ty: DomType::Alpha,
            },
            Tag::Eps => ScatterNode {
                l: 1,
                ty: DomType::Eps,
            },
            _ => ScatterNode {
                l: 0,
                ty: DomType::Eps,
            },
        })
        .collect();
    let (_, settings, stats) = run_sweeps(&ScatterAlgebra, leaves, |_| s_target);
    (settings.expect("n >= 2"), stats)
}

// ---------------------------------------------------------------------------
// Table 6: ε-dividing.
// ---------------------------------------------------------------------------

struct EpsDivideAlgebra;

impl NodeAlgebra for EpsDivideAlgebra {
    type Fwd = usize; // n_ε below this node
    type Bwd = (usize, usize); // (n_ε0, n_ε1) quotas

    fn combine(&self, upper: &usize, lower: &usize) -> usize {
        upper + lower
    }

    fn descend(
        &self,
        _n_prime: usize,
        upper: &usize,
        lower: &usize,
        back: &(usize, usize),
    ) -> ((usize, usize), (usize, usize), Option<Vec<SwitchSetting>>) {
        let (e0, _e1) = *back;
        let u_e0 = e0.min(*upper);
        let u_e1 = upper - u_e0;
        let l_e0 = e0 - u_e0;
        let l_e1 = lower - l_e0;
        ((u_e0, u_e1), (l_e0, l_e1), None)
    }
}

/// Message-passing execution of the Table 6 ε-dividing algorithm. Returns
/// the per-input quasisort tags and sweep statistics. Preconditions as in
/// [`crate::plan::eps_divide`] (checked by `debug_assert` here; use the
/// planner for validated errors).
pub fn distributed_eps_divide(tags: &[Tag]) -> (Vec<QTag>, SweepStats) {
    let n = tags.len();
    debug_assert!(tags.iter().all(|&t| t != Tag::Alpha));
    let n1 = tags.iter().filter(|&&t| t == Tag::One).count();
    debug_assert!(n1 <= n / 2);
    let leaves: Vec<usize> = tags.iter().map(|&t| (t == Tag::Eps) as usize).collect();
    let (leaf_quotas, _, stats) = run_sweeps(&EpsDivideAlgebra, leaves, |&total_eps| {
        let e1 = n / 2 - n1;
        (total_eps - e1, e1)
    });
    let qtags = tags
        .iter()
        .zip(&leaf_quotas)
        .map(|(&t, &(e0, _e1))| match t {
            Tag::Zero => QTag::Zero,
            Tag::One => QTag::One,
            Tag::Eps => {
                if e0 == 1 {
                    QTag::Eps0
                } else {
                    QTag::Eps1
                }
            }
            Tag::Alpha => unreachable!(),
        })
        .collect();
    (qtags, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{eps_divide, plan_bitsort, plan_scatter};

    #[test]
    fn bitsort_matches_planner_exhaustively_n8() {
        for pattern in 0..256u32 {
            let gamma: Vec<bool> = (0..8).map(|i| pattern >> i & 1 == 1).collect();
            for s in 0..8 {
                let (settings, stats) = distributed_bitsort(&gamma, s);
                assert_eq!(settings, plan_bitsort(&gamma, s).settings, "p={pattern} s={s}");
                assert_eq!(stats.forward_rounds, 3);
                assert_eq!(stats.backward_rounds, 3);
            }
        }
    }

    #[test]
    fn scatter_matches_planner_exhaustively_n4() {
        let all = [Tag::Zero, Tag::One, Tag::Alpha, Tag::Eps];
        for a in all {
            for b in all {
                for c in all {
                    for d in all {
                        let tags = [a, b, c, d];
                        for s in 0..4 {
                            let (settings, _) = distributed_scatter(&tags, s);
                            assert_eq!(
                                settings,
                                plan_scatter(&tags, s).settings,
                                "{tags:?} s={s}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scatter_matches_planner_random_large() {
        let n = 512usize;
        for seed in 0..8usize {
            let tags: Vec<Tag> = (0..n)
                .map(|i| match (i ^ seed).wrapping_mul(2654435761) >> 29 & 3 {
                    0 => Tag::Alpha,
                    1 => Tag::Eps,
                    2 => Tag::Zero,
                    _ => Tag::One,
                })
                .collect();
            let (settings, stats) = distributed_scatter(&tags, seed * 37 % n);
            assert_eq!(settings, plan_scatter(&tags, seed * 37 % n).settings);
            assert_eq!(stats.forward_rounds, 9);
            assert_eq!(stats.backward_rounds, 9);
        }
    }

    #[test]
    fn eps_divide_matches_planner() {
        use Tag::*;
        for tags in [
            vec![Eps, One, Eps, Zero, Eps, Eps, One, Eps],
            vec![Zero, Zero, One, One, Eps, Eps, Eps, Eps],
            vec![Eps; 8],
            vec![Zero, Eps, Zero, Eps, Zero, Eps, Zero, Eps],
        ] {
            let (qtags, _) = distributed_eps_divide(&tags);
            assert_eq!(qtags, eps_divide(&tags).unwrap().qtags, "{tags:?}");
        }
    }

    #[test]
    fn message_count_is_linear() {
        // 2(n−1) forward + 2(n−1) backward messages: the circuitry is O(n)
        // wires regardless of log-depth timing.
        let gamma = vec![true; 256];
        let (_, stats) = distributed_bitsort(&gamma, 0);
        assert_eq!(stats.messages, 2 * 255 + 2 * 255);
    }

    #[test]
    fn rounds_match_timing_model_structure() {
        // The sweep structure assumed by brsmn-sim: one up-wave and one
        // down-wave of log n rounds each.
        for m in 1..=10u32 {
            let n = 1usize << m;
            let gamma = vec![false; n];
            let (_, stats) = distributed_bitsort(&gamma, 0);
            assert_eq!(stats.forward_rounds, m as u64);
            assert_eq!(stats.backward_rounds, m as u64);
        }
    }
}
