//! Circular compact sequences `C^n_{s,l;β,γ}` (Eq. 5 of the paper).
//!
//! An `n`-bit sequence over two symbols is *circular compact* when all `l`
//! γ-symbols sit in one contiguous run modulo `n`, starting at position `s`,
//! and the remaining `n − l` β-symbols form the complementary run. The paper's
//! central results (Theorems 1–3) are statements about which compact sequences
//! an RBN can produce and how two half-length compact sequences merge into a
//! full-length one.

use serde::{Deserialize, Serialize};

/// A descriptor `(s, l)` of a circular compact arrangement over `n` positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Compact {
    /// Starting position of the γ run (`0 ≤ s < n`).
    pub s: usize,
    /// Length of the γ run (`0 ≤ l ≤ n`).
    pub l: usize,
}

/// Materializes `C^n_{s,l;β,γ}` as a boolean vector (`true` = γ).
///
/// Positions `s, s+1, …, s+l−1 (mod n)` hold γ; the rest hold β.
pub fn compact_sequence(n: usize, s: usize, l: usize) -> Vec<bool> {
    assert!(s < n && l <= n, "need s < n and l <= n (n={n}, s={s}, l={l})");
    let mut v = vec![false; n];
    for k in 0..l {
        v[(s + k) % n] = true;
    }
    v
}

/// `true` if position `pos` carries γ in `C^n_{s,l}`.
#[inline]
pub fn in_gamma_run(n: usize, s: usize, l: usize, pos: usize) -> bool {
    debug_assert!(pos < n);
    // Distance from s to pos going forward (mod n) is within the run.
    (pos + n - s) % n < l
}

/// Tests whether a boolean sequence (`true` = γ) is circular compact, and if
/// so returns its canonical descriptor.
///
/// For the degenerate runs `l = 0` and `l = n` every `s` is valid; the
/// canonical descriptor uses `s = 0`. Otherwise `s` is the unique β→γ
/// boundary.
pub fn recognize_compact(seq: &[bool]) -> Option<Compact> {
    let n = seq.len();
    assert!(n > 0);
    // Single run-length scan: count γs and β→γ boundaries in one pass,
    // bailing out at the second boundary. A sequence with 0 < l < n is
    // compact iff it has exactly one such boundary (circularly); the
    // degenerate runs have none. No allocation, no per-step modulo.
    let mut l = 0usize;
    let mut first_start = None;
    let mut prev = seq[n - 1];
    for (i, &g) in seq.iter().enumerate() {
        l += g as usize;
        if g && !prev {
            if first_start.is_some() {
                return None;
            }
            first_start = Some(i);
        }
        prev = g;
    }
    match first_start {
        Some(s) => Some(Compact { s, l }),
        // No boundary: all-β or all-γ; canonical s = 0.
        None => Some(Compact { s: 0, l }),
    }
}

/// The original boundary-collecting recognizer, kept as a test oracle for
/// the scan above.
#[cfg(test)]
pub(crate) fn recognize_compact_oracle(seq: &[bool]) -> Option<Compact> {
    let n = seq.len();
    assert!(n > 0);
    let l = seq.iter().filter(|&&g| g).count();
    if l == 0 || l == n {
        return Some(Compact { s: 0, l });
    }
    let mut starts = Vec::new();
    for i in 0..n {
        let prev = seq[(i + n - 1) % n];
        if seq[i] && !prev {
            starts.push(i);
        }
    }
    if starts.len() == 1 {
        Some(Compact { s: starts[0], l })
    } else {
        None
    }
}

/// Checks whether `seq` equals `C^n_{s,l}` exactly (for a specific `s`, not
/// just any compact arrangement).
pub fn is_compact_at(seq: &[bool], s: usize, l: usize) -> bool {
    let n = seq.len();
    if l == 0 {
        return seq.iter().all(|&g| !g);
    }
    if l == n {
        return seq.iter().all(|&g| g);
    }
    (0..n).all(|pos| seq[pos] == in_gamma_run(n, s, l, pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn eq5_both_branches() {
        // s + l <= n branch: β^s γ^l β^{n-s-l}.
        assert_eq!(
            compact_sequence(8, 2, 3),
            vec![false, false, true, true, true, false, false, false]
        );
        // s + l > n branch: γ^{l-n+s} β^{n-l} γ^{n-s}.
        assert_eq!(
            compact_sequence(8, 6, 4),
            vec![true, true, false, false, false, false, true, true]
        );
    }

    #[test]
    fn sorting_target_is_special_compact_sequence() {
        // C^n_{n/2, n/2; 0, 1} = 0^{n/2} 1^{n/2} (Section 4).
        let seq = compact_sequence(8, 4, 4);
        assert_eq!(
            seq,
            vec![false, false, false, false, true, true, true, true]
        );
    }

    #[test]
    fn degenerate_runs() {
        assert_eq!(compact_sequence(4, 3, 0), vec![false; 4]);
        assert_eq!(compact_sequence(4, 3, 4), vec![true; 4]);
    }

    #[test]
    fn recognize_round_trips() {
        for n in [2usize, 4, 8, 16] {
            for s in 0..n {
                for l in 1..n {
                    let seq = compact_sequence(n, s, l);
                    let c = recognize_compact(&seq).unwrap();
                    assert_eq!((c.s, c.l), (s, l), "n={n} s={s} l={l}");
                }
            }
        }
    }

    #[test]
    fn recognize_rejects_fragmented() {
        assert!(recognize_compact(&[true, false, true, false]).is_none());
        assert!(recognize_compact(&[true, false, true, true, false, false]).is_none());
    }

    #[test]
    fn recognize_degenerate_uses_s0() {
        assert_eq!(
            recognize_compact(&[false; 5]),
            Some(Compact { s: 0, l: 0 })
        );
        assert_eq!(recognize_compact(&[true; 5]), Some(Compact { s: 0, l: 5 }));
    }

    #[test]
    fn scan_recognizer_matches_oracle_exhaustively() {
        for n in 1usize..=14 {
            for pattern in 0u32..(1u32 << n) {
                let seq: Vec<bool> = (0..n).map(|i| pattern >> i & 1 == 1).collect();
                assert_eq!(
                    recognize_compact(&seq),
                    recognize_compact_oracle(&seq),
                    "n={n} pattern={pattern:b}"
                );
            }
        }
    }

    #[test]
    fn in_gamma_run_wraps() {
        // n=8, s=6, l=4 → run at 6,7,0,1.
        for pos in [6usize, 7, 0, 1] {
            assert!(in_gamma_run(8, 6, 4, pos));
        }
        for pos in [2usize, 3, 4, 5] {
            assert!(!in_gamma_run(8, 6, 4, pos));
        }
    }

    #[test]
    fn is_compact_at_distinguishes_start() {
        let seq = compact_sequence(8, 2, 3);
        assert!(is_compact_at(&seq, 2, 3));
        assert!(!is_compact_at(&seq, 3, 3));
        assert!(!is_compact_at(&seq, 2, 4));
    }

    proptest! {
        #[test]
        fn prop_generated_sequences_are_recognized(n_pow in 1u32..8, s in 0usize..256, l in 0usize..257) {
            let n = 1usize << n_pow;
            let s = s % n;
            let l = l % (n + 1);
            let seq = compact_sequence(n, s, l);
            let c = recognize_compact(&seq).expect("generated sequence must be compact");
            prop_assert_eq!(c.l, l);
            prop_assert!(is_compact_at(&seq, s, l));
        }

        #[test]
        fn prop_gamma_count_matches_l(n_pow in 1u32..8, s in 0usize..256, l in 0usize..257) {
            let n = 1usize << n_pow;
            let (s, l) = (s % n, l % (n + 1));
            let seq = compact_sequence(n, s, l);
            prop_assert_eq!(seq.iter().filter(|&&g| g).count(), l);
        }
    }
}
