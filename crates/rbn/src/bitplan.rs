//! Word-packed, allocation-free implementations of the distributed sweeps
//! (Tables 3, 4 and 6).
//!
//! The planners in [`crate::plan`] materialize the Fig. 8 tree as
//! `Vec<Vec<usize>>` per route — correct and readable, but the sweeps are
//! prefix-sum shaped, so every per-node forward value is a *range count*
//! over the leaves. This module packs the leaf tags into `u64` words (two
//! bit planes, two bits per tag) and answers every forward-phase query with
//! popcounts over a word-granular rank index:
//!
//! * bit sort (Table 3): `l[j][b]` = number of γ leaves under node `(j, b)`
//!   = `rank_γ((b+1)·2^j) − rank_γ(b·2^j)`;
//! * scatter (Table 4): the `(l, type)` pair of a node is the sign and
//!   magnitude of `nα − nε` over its leaf range (ties resolved along the
//!   upper-child spine, matching the combine rule of Table 4 exactly);
//! * ε-divide (Table 6): `n_ε[j][b]` is a range count over the ε plane.
//!
//! The backward phases keep only one tree level alive at a time in a pair of
//! ping-pong buffers, and the switch-setting phase writes straight into a
//! caller-provided [`RbnSettings`] table via the slice-filling variants of
//! Table 5 ([`crate::setting::binary_compact_setting_into`]). After a
//! one-time warm-up of the [`SweepScratch`], planning a block performs **no
//! heap allocation** — the property the `brsmn-bench` `alloc-count` test
//! pins down end to end.
//!
//! ## Carried-rank sweeps
//!
//! Every forward-phase query the waves issue is an **aligned segment
//! count**: node `(j, b)` covers exactly `[b·2^j, (b+1)·2^j)`, never an
//! arbitrary `[0, i)` prefix. [`BitVec::seg_count`] answers those directly
//! (one masked popcount for sub-word segments, whole-word popcounts
//! otherwise), so the general-purpose rank index is dead weight on the
//! sweep path — the fill paths skip its O(len/64) build entirely and
//! [`BitVec::rank`] rebuilds lazily (well, falls back to a word scan;
//! [`BitVec::ensure_rank_index`] restores O(1)) for random-access users.
//! The scatter wave additionally *carries* each node's own (α, ε) counts
//! down from its parent, so settling a node costs two segment counts for
//! the upper child and two subtractions for the lower — and a subtree with
//! no α and no ε at all short-circuits its tie walk to ε immediately.
//!
//! ## Per-op profiler
//!
//! Each scratch tallies a [`crate::profile::PlanOpProfile`]
//! (op counts always on, nanos behind the `plan-profile` feature); callers
//! drain it with [`SweepScratch::take_profile`].
//!
//! Equivalence with the reference planners is exhaustively tested here and
//! property-tested end to end in `brsmn-core`.

use crate::fabric::RbnSettings;
use crate::plan::{DomType, PlanError};
use crate::profile::{PlanOpProfile, ProfClock};
use crate::setting::{binary_compact_setting_into, trinary_compact_setting_into};
use brsmn_switch::tag::TagCounts;
use brsmn_switch::{SwitchSetting, Tag};
use brsmn_topology::log2_exact;

/// Number of `u64` lanes per block. The sweep kernels below operate on
/// `[u64; LANES]` blocks with fixed-width array ops, which the compiler
/// autovectorizes on stable Rust (u64x4 ≙ one AVX2 register, two NEON
/// registers) — no nightly / portable-SIMD dependency.
pub const LANES: usize = 4;

/// Bits covered by one `[u64; LANES]` lane block.
pub const BLOCK_BITS: usize = LANES * 64;

/// Mask selecting the bits of word `w` that fall below `len` (all-ones for
/// interior words, a partial mask for the tail word, zero past the end).
/// Written so `1u64 << r` is never evaluated at `r == 64`.
#[inline]
pub(crate) fn lane_tail_mask(len: usize, w: usize) -> u64 {
    let start = w << 6;
    if len >= start + 64 {
        !0u64
    } else if len <= start {
        0
    } else {
        (1u64 << (len - start)) - 1
    }
}

/// A bit vector packed into `[u64; LANES]` lane blocks with an *optional*
/// lane-wise rank index.
///
/// The packed planners only ever issue aligned segment counts
/// ([`BitVec::seg_count`]), which need no index, so the fill paths no
/// longer build one — that O(len/64) pass per fill was pure overhead on
/// the sweep path. Random-access [`BitVec::rank`] still works on an
/// index-less vector (word-scan fallback); call
/// [`BitVec::ensure_rank_index`] first to make it O(1) again.
#[derive(Debug, Clone, Default)]
pub struct BitVec {
    blocks: Vec<[u64; LANES]>,
    /// `rank_index[b][l]` = set bits in words `[0, LANES·b + l)`. Lanes past
    /// the last stored word are never read (guarded by `nwords`). Empty
    /// until [`BitVec::ensure_rank_index`] builds it.
    rank_index: Vec<[u32; LANES]>,
    total_ones: usize,
    nwords: usize,
    len: usize,
}

/// The rank index is derived (and built lazily), so equality is over the
/// semantic fields only: an indexed and an index-less vector holding the
/// same bits compare equal. Lanes past the last word are zeroed by every
/// fill path, keeping the block comparison canonical.
impl PartialEq for BitVec {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.nwords == other.nwords
            && self.total_ones == other.total_ones
            && self.blocks == other.blocks
    }
}

impl Eq for BitVec {}

impl BitVec {
    /// An empty bit vector (fill it with [`BitVec::fill_from`]).
    pub fn new() -> Self {
        BitVec::default()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn clear(&mut self, len: usize) {
        self.blocks.clear();
        self.rank_index.clear();
        self.total_ones = 0;
        self.nwords = 0;
        self.len = len;
    }

    /// Appends word `nwords`, extending the lane block. The rank index is
    /// **not** maintained here — see [`BitVec::ensure_rank_index`].
    #[inline]
    fn push_word(&mut self, x: u64) {
        let lane = self.nwords & (LANES - 1);
        if lane == 0 {
            self.blocks.push([0u64; LANES]);
        }
        let blk = self.nwords / LANES;
        self.blocks[blk][lane] = x;
        self.total_ones += x.count_ones() as usize;
        self.nwords += 1;
    }

    /// Rebuilds the vector as `len` bits produced by `f`, packing 64 at a
    /// time. Reuses the block buffers: no allocation once capacity has
    /// grown to `len` bits. The rank index is *not* built (the sweeps only
    /// issue [`BitVec::seg_count`] queries).
    pub fn fill_from<F: FnMut(usize) -> bool>(&mut self, len: usize, mut f: F) {
        self.clear(len);
        let mut acc = 0u64;
        for i in 0..len {
            if f(i) {
                acc |= 1u64 << (i & 63);
            }
            if i & 63 == 63 {
                self.push_word(acc);
                acc = 0;
            }
        }
        if len & 63 != 0 {
            self.push_word(acc);
        }
    }

    /// Rebuilds from whole pre-packed words: `word(w)` must return word `w`
    /// with any bits at positions `≥ len` already zero.
    pub fn fill_from_words<F: FnMut(usize) -> u64>(&mut self, len: usize, mut word: F) {
        self.clear(len);
        for w in 0..len.div_ceil(64) {
            self.push_word(word(w));
        }
    }

    /// Rebuilds from whole pre-packed lane blocks: `block(b)` must return
    /// lane block `b` with any bits at positions `≥ len` already zero in the
    /// tail *word* (whole lanes past the end are cleared here). This is how
    /// [`TagVec::extract_plane`] derives a plane block-parallel: the
    /// popcount below is a fixed-width array op.
    pub fn fill_from_blocks<F: FnMut(usize) -> [u64; LANES]>(&mut self, len: usize, mut block: F) {
        self.clear(len);
        self.nwords = len.div_ceil(64);
        let nblocks = self.nwords.div_ceil(LANES);
        for b in 0..nblocks {
            let mut blk = block(b);
            for (l, lane) in blk.iter_mut().enumerate() {
                // Lanes past the last word stay 0, matching `push_word`, so
                // the block comparison in `PartialEq` is canonical.
                if b * LANES + l >= self.nwords {
                    *lane = 0;
                }
            }
            let mut acc = 0u32;
            for lane in &blk {
                acc += lane.count_ones();
            }
            self.total_ones += acc as usize;
            self.blocks.push(blk);
        }
    }

    /// Builds the lane-wise rank index so [`BitVec::rank`] is O(1). The
    /// fill paths skip this — the sweeps only issue aligned
    /// [`BitVec::seg_count`] queries — so random-access users rebuild it
    /// lazily here. Idempotent; a no-op once built.
    pub fn ensure_rank_index(&mut self) {
        if !self.rank_index.is_empty() || self.nwords == 0 {
            return;
        }
        let mut acc = 0u32;
        for (b, blk) in self.blocks.iter().enumerate() {
            let mut ranks = [0u32; LANES];
            for l in 0..LANES {
                ranks[l] = if b * LANES + l < self.nwords { acc } else { 0 };
                acc += blk[l].count_ones();
            }
            self.rank_index.push(ranks);
        }
    }

    /// Bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = i >> 6;
        self.blocks[w / LANES][w & (LANES - 1)] >> (i & 63) & 1 == 1
    }

    /// Number of set bits in `[0, i)` (requires `i ≤ len`). O(1) once
    /// [`BitVec::ensure_rank_index`] has run; otherwise falls back to a
    /// word-scan prefix (the fill paths no longer build the index, because
    /// the sweeps only need [`BitVec::seg_count`]).
    #[inline]
    pub fn rank(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        let w = i >> 6;
        if w >= self.nwords {
            // i == len with len a multiple of 64: past the last stored word.
            return self.total_ones;
        }
        let r = i & 63;
        let word = self.blocks[w / LANES][w & (LANES - 1)];
        let base = if self.rank_index.is_empty() {
            let mut acc = 0usize;
            for ww in 0..w {
                acc += self.blocks[ww / LANES][ww & (LANES - 1)].count_ones() as usize;
            }
            acc
        } else {
            self.rank_index[w / LANES][w & (LANES - 1)] as usize
        };
        if r == 0 {
            base
        } else {
            base + (word & ((1u64 << r) - 1)).count_ones() as usize
        }
    }

    /// Number of set bits in the aligned segment `[pos, pos + seg)` —
    /// `pos` must be a multiple of `seg`, and `seg` a power of two. Every
    /// forward-phase tree query has this shape (node `(j, b)` covers
    /// exactly `[b·2^j, (b+1)·2^j)`), and unlike [`BitVec::rank`] it needs
    /// no rank index: a sub-word segment is one shift + masked popcount
    /// (alignment guarantees it never straddles a word), and a multi-word
    /// segment is a short run of whole-word popcounts. This is the
    /// carried-rank form of the in-order sweeps — it is what lets the fill
    /// paths skip the O(len/64) index build entirely.
    #[inline]
    pub fn seg_count(&self, pos: usize, seg: usize) -> usize {
        debug_assert!(seg.is_power_of_two(), "seg={seg}");
        debug_assert!(pos % seg == 0, "pos={pos} seg={seg}");
        debug_assert!(pos + seg <= self.len.next_multiple_of(seg.max(1)));
        if seg < 64 {
            let w = pos >> 6;
            if w >= self.nwords {
                return 0;
            }
            let word = self.blocks[w / LANES][w & (LANES - 1)];
            ((word >> (pos & 63)) & ((1u64 << seg) - 1)).count_ones() as usize
        } else {
            let w1 = ((pos + seg) >> 6).min(self.nwords);
            let mut acc = 0u32;
            for w in (pos >> 6)..w1 {
                acc += self.blocks[w / LANES][w & (LANES - 1)].count_ones();
            }
            acc as usize
        }
    }

    /// Scalar oracle for [`BitVec::rank`]: a bit-at-a-time walk with no rank
    /// index. Kept (like `route_reference`) so the lane-blocked fast path
    /// always has an obviously-correct implementation to be tested against.
    pub fn rank_scalar(&self, i: usize) -> usize {
        debug_assert!(i <= self.len);
        (0..i).filter(|&idx| self.get(idx)).count()
    }

    /// Number of set bits in `[a, b)`.
    #[inline]
    pub fn count_range(&self, a: usize, b: usize) -> usize {
        debug_assert!(a <= b);
        self.rank(b) - self.rank(a)
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.total_ones
    }

    /// Position of the first set bit, if any. Lanes past the end are kept
    /// zero by construction, so whole blocks are rejected with one wide OR.
    pub fn first_set(&self) -> Option<usize> {
        for (b, blk) in self.blocks.iter().enumerate() {
            let mut any = 0u64;
            for lane in blk {
                any |= lane;
            }
            if any == 0 {
                continue;
            }
            for (l, &x) in blk.iter().enumerate() {
                if x != 0 {
                    return Some(((b * LANES + l) << 6) + x.trailing_zeros() as usize);
                }
            }
        }
        None
    }

    /// Heap bytes currently reserved (capacity, not length).
    pub fn footprint_bytes(&self) -> usize {
        self.blocks.capacity() * std::mem::size_of::<[u64; LANES]>()
            + self.rank_index.capacity() * std::mem::size_of::<[u32; LANES]>()
    }
}

/// One of the four tag values as a bit plane of a [`TagVec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagPlane {
    /// Positions holding `0`.
    Zero,
    /// Positions holding `1`.
    One,
    /// Positions holding `α`.
    Alpha,
    /// Positions holding `ε`.
    Eps,
}

/// A tag vector packed two bits per tag into two bit planes stored as
/// `[u64; LANES]` lane blocks.
///
/// Encoding (`lo`, `hi`): `0 = (0,0)`, `1 = (1,0)`, `α = (0,1)`,
/// `ε = (1,1)`. Any single-tag plane is one boolean expression over the two
/// planes, evaluated a whole lane block at a time (`plane_block`); the
/// single-word scalar form (`plane_word`) is retained as the oracle the
/// wide kernels are tested against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TagVec {
    lo: Vec<[u64; LANES]>,
    hi: Vec<[u64; LANES]>,
    nwords: usize,
    len: usize,
}

impl TagVec {
    /// An empty tag vector.
    pub fn new() -> Self {
        TagVec::default()
    }

    /// Number of tags.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no tags are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn push_words(&mut self, wlo: u64, whi: u64) {
        let lane = self.nwords & (LANES - 1);
        if lane == 0 {
            self.lo.push([0u64; LANES]);
            self.hi.push([0u64; LANES]);
        }
        let blk = self.nwords / LANES;
        self.lo[blk][lane] = wlo;
        self.hi[blk][lane] = whi;
        self.nwords += 1;
    }

    /// Rebuilds the vector as `len` tags produced by `f`, packing both
    /// planes 64 tags at a time. No allocation once capacity suffices.
    pub fn fill_from<F: FnMut(usize) -> Tag>(&mut self, len: usize, mut f: F) {
        self.lo.clear();
        self.hi.clear();
        self.nwords = 0;
        self.len = len;
        let (mut alo, mut ahi) = (0u64, 0u64);
        for i in 0..len {
            let (blo, bhi) = match f(i) {
                Tag::Zero => (0, 0),
                Tag::One => (1, 0),
                Tag::Alpha => (0, 1),
                Tag::Eps => (1, 1),
            };
            let sh = i & 63;
            alo |= (blo as u64) << sh;
            ahi |= (bhi as u64) << sh;
            if sh == 63 {
                self.push_words(alo, ahi);
                (alo, ahi) = (0, 0);
            }
        }
        if len & 63 != 0 {
            self.push_words(alo, ahi);
        }
    }

    /// Branchless [`TagVec::fill_from`]: `f` returns the tag's discriminant
    /// code (`tag as u8`). The declaration order of [`Tag`] makes the two
    /// low bits of the code exactly the `(lo, hi)` plane encoding — `lo =
    /// t & 1`, `hi = (t >> 1) & 1` — so the per-element 4-way match of
    /// [`TagVec::fill_from`] (kept as the oracle) disappears from the
    /// packing loop. This is the incremental form of tag derivation used
    /// when the tags are already materialized (the post-scatter reload):
    /// the planes are rebuilt by shift/mask alone, with no per-tag
    /// branching.
    pub fn fill_from_codes<F: FnMut(usize) -> u8>(&mut self, len: usize, mut f: F) {
        self.lo.clear();
        self.hi.clear();
        self.nwords = 0;
        self.len = len;
        let (mut alo, mut ahi) = (0u64, 0u64);
        for i in 0..len {
            let t = f(i) as u64;
            debug_assert!(t < 4);
            let sh = i & 63;
            alo |= (t & 1) << sh;
            ahi |= ((t >> 1) & 1) << sh;
            if sh == 63 {
                self.push_words(alo, ahi);
                (alo, ahi) = (0, 0);
            }
        }
        if len & 63 != 0 {
            self.push_words(alo, ahi);
        }
    }

    /// Tag at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Tag {
        debug_assert!(i < self.len);
        let (w, sh) = (i >> 6, i & 63);
        let (blk, lane) = (w / LANES, w & (LANES - 1));
        match (self.lo[blk][lane] >> sh & 1, self.hi[blk][lane] >> sh & 1) {
            (0, 0) => Tag::Zero,
            (1, 0) => Tag::One,
            (0, 1) => Tag::Alpha,
            _ => Tag::Eps,
        }
    }

    /// Word `w` of the requested plane, with bits beyond `len` cleared —
    /// the scalar oracle for [`TagVec::plane_block`].
    #[inline]
    fn plane_word(&self, plane: TagPlane, w: usize) -> u64 {
        let (blk, lane) = (w / LANES, w & (LANES - 1));
        let (lo, hi) = (self.lo[blk][lane], self.hi[blk][lane]);
        let raw = match plane {
            TagPlane::Zero => !lo & !hi,
            TagPlane::One => lo & !hi,
            TagPlane::Alpha => !lo & hi,
            TagPlane::Eps => lo & hi,
        };
        raw & lane_tail_mask(self.len, w)
    }

    /// Lane block `b` of the requested plane, with bits beyond `len`
    /// cleared. Interior blocks are four unmasked boolean lane ops; only the
    /// final block pays the per-lane tail mask.
    #[inline]
    fn plane_block(&self, plane: TagPlane, b: usize) -> [u64; LANES] {
        let (lo, hi) = (&self.lo[b], &self.hi[b]);
        let mut out = [0u64; LANES];
        for l in 0..LANES {
            out[l] = match plane {
                TagPlane::Zero => !lo[l] & !hi[l],
                TagPlane::One => lo[l] & !hi[l],
                TagPlane::Alpha => !lo[l] & hi[l],
                TagPlane::Eps => lo[l] & hi[l],
            };
        }
        if (b + 1) * BLOCK_BITS > self.len {
            for (l, lane) in out.iter_mut().enumerate() {
                *lane &= lane_tail_mask(self.len, b * LANES + l);
            }
        }
        out
    }

    /// Tallies all four tags by popcount over the packed planes, one lane
    /// block per iteration.
    pub fn counts(&self) -> TagCounts {
        let mut c = TagCounts::default();
        for b in 0..self.lo.len() {
            let (lo, hi) = (&self.lo[b], &self.hi[b]);
            let full = (b + 1) * BLOCK_BITS <= self.len;
            for l in 0..LANES {
                let m = if full {
                    !0u64
                } else {
                    lane_tail_mask(self.len, b * LANES + l)
                };
                c.n0 += ((!lo[l] & !hi[l]) & m).count_ones() as usize;
                c.n1 += ((lo[l] & !hi[l]) & m).count_ones() as usize;
                c.na += ((!lo[l] & hi[l]) & m).count_ones() as usize;
                c.ne += ((lo[l] & hi[l]) & m).count_ones() as usize;
            }
        }
        c
    }

    /// Scalar oracle for [`TagVec::counts`]: the retained single-u64 loop.
    pub fn counts_scalar(&self) -> TagCounts {
        let mut c = TagCounts::default();
        for w in 0..self.nwords {
            c.n0 += self.plane_word(TagPlane::Zero, w).count_ones() as usize;
            c.n1 += self.plane_word(TagPlane::One, w).count_ones() as usize;
            c.na += self.plane_word(TagPlane::Alpha, w).count_ones() as usize;
            c.ne += self.plane_word(TagPlane::Eps, w).count_ones() as usize;
        }
        c
    }

    /// Position of the first tag in `plane`, if any. Whole lane blocks with
    /// no hit are rejected with one wide OR before any scalar scan.
    pub fn first_in_plane(&self, plane: TagPlane) -> Option<usize> {
        for b in 0..self.lo.len() {
            let blk = self.plane_block(plane, b);
            let mut any = 0u64;
            for lane in &blk {
                any |= lane;
            }
            if any == 0 {
                continue;
            }
            for (l, &x) in blk.iter().enumerate() {
                if x != 0 {
                    return Some(((b * LANES + l) << 6) + x.trailing_zeros() as usize);
                }
            }
        }
        None
    }

    /// Extracts one plane into `out` (with its rank index), one lane block
    /// at a time.
    pub fn extract_plane(&self, plane: TagPlane, out: &mut BitVec) {
        out.fill_from_blocks(self.len, |b| self.plane_block(plane, b));
    }

    /// Scalar oracle for [`TagVec::extract_plane`]: the retained word-at-a-
    /// time path through [`BitVec::fill_from_words`].
    pub fn extract_plane_scalar(&self, plane: TagPlane, out: &mut BitVec) {
        out.fill_from_words(self.len, |w| self.plane_word(plane, w));
    }

    /// Heap bytes currently reserved.
    pub fn footprint_bytes(&self) -> usize {
        (self.lo.capacity() + self.hi.capacity()) * std::mem::size_of::<[u64; LANES]>()
    }
}

/// Reusable state for the packed planners: the input tag planes, the derived
/// rank-indexed planes, and the two ping-pong buffers that hold the one live
/// tree level of each backward phase.
///
/// Size once (first use at a given block size grows the buffers), then plan
/// any number of blocks with zero heap allocation. One `SweepScratch` plans
/// all three sweeps of a BSN in sequence: [`SweepScratch::plan_scatter`],
/// then [`SweepScratch::eps_divide`] + [`SweepScratch::plan_bitsort`] on the
/// refreshed tags.
#[derive(Debug, Clone, Default)]
pub struct SweepScratch {
    tags: TagVec,
    alpha: BitVec,
    eps: BitVec,
    ones: BitVec,
    gamma: BitVec,
    cur: Vec<usize>,
    next: Vec<usize>,
    cur_q: Vec<usize>,
    next_q: Vec<usize>,
    /// Carried (α, ε) counts of the live scatter level (see
    /// [`SweepScratch::plan_scatter`]).
    cur_a: Vec<usize>,
    next_a: Vec<usize>,
    cur_e: Vec<usize>,
    next_e: Vec<usize>,
    profile: PlanOpProfile,
}

impl SweepScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SweepScratch::default()
    }

    /// Loads the block's tags (length `len`, a power of two) into the packed
    /// planes. Call before [`SweepScratch::plan_scatter`] and again (with the
    /// post-scatter tags) before [`SweepScratch::eps_divide`].
    pub fn set_tags<F: FnMut(usize) -> Tag>(&mut self, len: usize, f: F) {
        let clock = ProfClock::start();
        self.tags.fill_from(len, f);
        self.profile.tag_derive_ops += len as u64;
        self.profile.tag_derive_nanos += clock.elapsed_nanos();
    }

    /// Loads the block's tags from discriminant codes (`tag as u8`) via the
    /// branchless [`TagVec::fill_from_codes`] packing — use when the tags
    /// are already materialized (e.g. the post-scatter reload).
    pub fn set_tags_from_codes<F: FnMut(usize) -> u8>(&mut self, len: usize, f: F) {
        let clock = ProfClock::start();
        self.tags.fill_from_codes(len, f);
        self.profile.tag_derive_ops += len as u64;
        self.profile.tag_derive_nanos += clock.elapsed_nanos();
    }

    /// The per-op profile accumulated since the last take, leaving zeros
    /// behind. Counts are always exact; nanos are nonzero only with the
    /// `plan-profile` feature (see [`crate::profile`]).
    pub fn take_profile(&mut self) -> PlanOpProfile {
        std::mem::take(&mut self.profile)
    }

    /// The per-op profile accumulated so far (see
    /// [`SweepScratch::take_profile`]).
    pub fn profile(&self) -> &PlanOpProfile {
        &self.profile
    }

    /// The currently loaded tags.
    pub fn tags(&self) -> &TagVec {
        &self.tags
    }

    /// Tag tallies of the loaded block (popcount over the planes).
    pub fn counts(&self) -> TagCounts {
        self.tags.counts()
    }

    /// Loads sort bits directly (for standalone bit-sort planning without an
    /// ε-divide pass).
    pub fn set_gamma<F: FnMut(usize) -> bool>(&mut self, len: usize, f: F) {
        self.gamma.fill_from(len, f);
    }

    /// The current γ (sort-bit) plane — filled by [`SweepScratch::eps_divide`]
    /// or [`SweepScratch::set_gamma`].
    pub fn gamma(&self) -> &BitVec {
        &self.gamma
    }

    /// Heap bytes currently reserved by all buffers.
    pub fn footprint_bytes(&self) -> usize {
        self.tags.footprint_bytes()
            + self.alpha.footprint_bytes()
            + self.eps.footprint_bytes()
            + self.ones.footprint_bytes()
            + self.gamma.footprint_bytes()
            + (self.cur.capacity()
                + self.next.capacity()
                + self.cur_q.capacity()
                + self.next_q.capacity()
                + self.cur_a.capacity()
                + self.next_a.capacity()
                + self.cur_e.capacity()
                + self.next_e.capacity())
                * std::mem::size_of::<usize>()
    }

    fn ensure_levels(&mut self, len: usize) {
        if self.cur.len() < len {
            self.cur.resize(len, 0);
            self.next.resize(len, 0);
        }
    }

    fn ensure_quota_levels(&mut self, len: usize) {
        if self.cur_q.len() < len {
            self.cur_q.resize(len, 0);
            self.next_q.resize(len, 0);
        }
    }

    fn ensure_count_levels(&mut self, len: usize) {
        if self.cur_a.len() < len {
            self.cur_a.resize(len, 0);
            self.next_a.resize(len, 0);
            self.cur_e.resize(len, 0);
            self.next_e.resize(len, 0);
        }
    }

    /// Word-parallel Table 3: plans a bit sort of the loaded γ plane with
    /// target start `s_target`, writing the merging-stage settings of the
    /// sub-RBN occupying lines `[base, base + len)` into `settings` (stages
    /// `[0, log2 len)`, the same mapping as
    /// [`RbnSettings::program_subnetwork`]).
    ///
    /// Produces bit-for-bit the same settings as [`crate::plan::plan_bitsort`].
    pub fn plan_bitsort(&mut self, s_target: usize, base: usize, settings: &mut RbnSettings) {
        let sz = self.gamma.len();
        let m = log2_exact(sz) as usize;
        assert!(s_target < sz);
        assert!(base.is_multiple_of(sz) && base + sz <= settings.n());
        self.ensure_levels(sz);
        let clock = ProfClock::start();
        self.cur[0] = s_target;
        for j in (1..=m).rev() {
            let half = 1usize << (j - 1);
            for b in 0..(sz >> j) {
                let s_node = self.cur[b];
                let l0 = self.gamma.seg_count(2 * b * half, half);
                let s0 = s_node % half;
                let s1 = (s_node + l0) % half;
                let bset = ((s_node + l0) / half) % 2;
                let (b_val, b_comp) = if bset == 1 {
                    (SwitchSetting::Crossing, SwitchSetting::Parallel)
                } else {
                    (SwitchSetting::Parallel, SwitchSetting::Crossing)
                };
                binary_compact_setting_into(
                    settings.block_mut(j - 1, (base >> j) + b),
                    0,
                    s1,
                    b_comp,
                    b_val,
                );
                self.next[2 * b] = s0;
                self.next[2 * b + 1] = s1;
            }
            std::mem::swap(&mut self.cur, &mut self.next);
        }
        // One node settled and one segment count per tree node: sz − 1 each.
        self.profile.quasisort_ops += (sz - 1) as u64;
        self.profile.rank_ops += (sz - 1) as u64;
        self.profile.quasisort_nanos += clock.elapsed_nanos();
    }

    /// The `(l, type)` forward pair of a child node whose (α, ε) leaf
    /// counts are already known. For `nα = nε` the reference combine rule
    /// inherits the upper child's type, so the tie is resolved by
    /// [`SweepScratch::tie_type`] — unless the subtree holds no α and no ε
    /// at all, in which case every spine descendant is also empty and the
    /// walk provably ends at a χ/ε leaf: ε, immediately. Dense blocks (all
    /// tags χ after a scatter has consumed the α/ε pairs) hit that
    /// shortcut at every node.
    #[inline]
    fn child_pair(&self, a: usize, e: usize, j: usize, b: usize, steps: &mut u64) -> (usize, DomType) {
        if a > e {
            return (a - e, DomType::Alpha);
        }
        if e > a {
            return (e - a, DomType::Eps);
        }
        if a == 0 {
            return (0, DomType::Eps);
        }
        (0, self.tie_type(j, b, steps))
    }

    /// Tie resolution for a node with `nα = nε > 0`: walk the upper-child
    /// spine down to the first non-zero value (a χ leaf yields ε), exactly
    /// the reference combine rule. Each step is two aligned segment
    /// counts; an empty subtree (`nα = nε = 0`) exits to ε at once.
    fn tie_type(&self, j: usize, b: usize, steps: &mut u64) -> DomType {
        let (mut jj, mut bb) = (j, b);
        while jj > 0 {
            jj -= 1;
            bb <<= 1;
            *steps += 1;
            let seg = 1usize << jj;
            let a = self.alpha.seg_count(bb * seg, seg);
            let e = self.eps.seg_count(bb * seg, seg);
            if a > e {
                return DomType::Alpha;
            }
            if e > a {
                return DomType::Eps;
            }
            if a == 0 {
                return DomType::Eps;
            }
        }
        DomType::Eps
    }

    /// Word-parallel Table 4: plans a scatter of the loaded tags with target
    /// start `s_target`, writing into `settings` exactly like
    /// [`SweepScratch::plan_bitsort`]. Bit-for-bit equal to
    /// [`crate::plan::plan_scatter`].
    ///
    /// The wave carries each node's own (α, ε) counts down from its parent
    /// (`cur_a`/`cur_e`, seeded with the plane totals at the root), so
    /// settling a node costs two segment counts — the upper child's — and
    /// two subtractions for the lower child, instead of six range counts
    /// from scratch.
    pub fn plan_scatter(&mut self, s_target: usize, base: usize, settings: &mut RbnSettings) {
        let sz = self.tags.len();
        let m = log2_exact(sz) as usize;
        assert!(s_target < sz);
        assert!(base.is_multiple_of(sz) && base + sz <= settings.n());
        let clock = ProfClock::start();
        self.tags.extract_plane(TagPlane::Alpha, &mut self.alpha);
        self.tags.extract_plane(TagPlane::Eps, &mut self.eps);
        self.profile.rank_nanos += clock.elapsed_nanos();
        self.ensure_levels(sz);
        self.ensure_count_levels(sz);
        let clock = ProfClock::start();
        let mut steps = 0u64;
        self.cur[0] = s_target;
        self.cur_a[0] = self.alpha.count_ones();
        self.cur_e[0] = self.eps.count_ones();
        for j in (1..=m).rev() {
            let half = 1usize << (j - 1);
            let n_prime = 1usize << j;
            for b in 0..(sz >> j) {
                let s_node = self.cur[b];
                let (a_node, e_node) = (self.cur_a[b], self.cur_e[b]);
                let a_up = self.alpha.seg_count(2 * b * half, half);
                let e_up = self.eps.seg_count(2 * b * half, half);
                let (a_dn, e_dn) = (a_node - a_up, e_node - e_up);
                let l_node = (a_node as isize - e_node as isize).unsigned_abs();
                let (l0, ty0) = self.child_pair(a_up, e_up, j - 1, 2 * b, &mut steps);
                let (l1, ty1) = self.child_pair(a_dn, e_dn, j - 1, 2 * b + 1, &mut steps);
                self.next_a[2 * b] = a_up;
                self.next_e[2 * b] = e_up;
                self.next_a[2 * b + 1] = a_dn;
                self.next_e[2 * b + 1] = e_dn;
                let slice = settings.block_mut(j - 1, (base >> j) + b);
                let (s0, s1);
                if ty0 == ty1 {
                    // ε/α-addition: Lemma 1, same as the bit-sorting setting.
                    s0 = s_node % half;
                    s1 = (s_node + l0) % half;
                    let bset = ((s_node + l0) / half) % 2;
                    let (b_val, b_comp) = if bset == 1 {
                        (SwitchSetting::Crossing, SwitchSetting::Parallel)
                    } else {
                        (SwitchSetting::Parallel, SwitchSetting::Crossing)
                    };
                    binary_compact_setting_into(slice, 0, s1, b_comp, b_val);
                } else {
                    // ε/α-elimination: Lemmas 2–5.
                    let bcast = if ty0 == DomType::Alpha {
                        SwitchSetting::UpperBroadcast
                    } else {
                        SwitchSetting::LowerBroadcast
                    };
                    let (s_tmp, l_tmp, ucast);
                    if l0 >= l1 {
                        s0 = s_node % half;
                        s1 = (s_node + l_node) % half;
                        s_tmp = s1;
                        l_tmp = l1;
                        ucast = SwitchSetting::Parallel;
                    } else {
                        s0 = (s_node + l_node) % half;
                        s1 = s_node % half;
                        s_tmp = s0;
                        l_tmp = l0;
                        ucast = SwitchSetting::Crossing;
                    }
                    let ucomp = ucast.complement();
                    if s_node + l_node < half {
                        binary_compact_setting_into(slice, s_tmp, l_tmp, ucast, bcast);
                    } else if s_node < half {
                        trinary_compact_setting_into(slice, s_tmp, l_tmp, ucomp, bcast, ucast);
                    } else if s_node + l_node < n_prime {
                        binary_compact_setting_into(slice, s_tmp, l_tmp, ucomp, bcast);
                    } else {
                        trinary_compact_setting_into(slice, s_tmp, l_tmp, ucast, bcast, ucomp);
                    }
                }
                self.next[2 * b] = s0;
                self.next[2 * b + 1] = s1;
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            std::mem::swap(&mut self.cur_a, &mut self.next_a);
            std::mem::swap(&mut self.cur_e, &mut self.next_e);
        }
        // Closed form: sz − 1 nodes settled, two segment counts per node
        // plus two per tie-walk step.
        self.profile.scatter_ops += (sz - 1) as u64;
        self.profile.rank_ops += 2 * (sz - 1) as u64 + 2 * steps;
        self.profile.scatter_nanos += clock.elapsed_nanos();
    }

    /// Word-parallel Table 6: resolves every ε of the loaded tags to `ε₀` or
    /// `ε₁` and stores the combined sort bits (`1` and `ε₁` sort downward) in
    /// the γ plane, ready for [`SweepScratch::plan_bitsort`] with target
    /// `len/2`. Produces the same dummy assignment as
    /// [`crate::plan::eps_divide`].
    pub fn eps_divide(&mut self) -> Result<(), PlanError> {
        let sz = self.tags.len();
        let m = log2_exact(sz) as usize;
        if let Some(position) = self.tags.first_in_plane(TagPlane::Alpha) {
            return Err(PlanError::AlphaInQuasisort { position });
        }
        let counts = self.counts();
        if counts.n0 > sz / 2 || counts.n1 > sz / 2 {
            return Err(PlanError::HalfOverflow {
                n0: counts.n0,
                n1: counts.n1,
                half: sz / 2,
            });
        }
        let clock = ProfClock::start();
        self.tags.extract_plane(TagPlane::Eps, &mut self.eps);
        self.profile.rank_nanos += clock.elapsed_nanos();
        self.ensure_levels(sz);
        let clock = ProfClock::start();
        // Backward phase: split the root quota n_ε0 = n_ε − (n/2 − n1) down
        // the tree; only the ε₀ quota needs to travel.
        let root_e1 = sz / 2 - counts.n1;
        self.cur[0] = counts.ne - root_e1;
        for j in (1..=m).rev() {
            let half = 1usize << (j - 1);
            for b in 0..(sz >> j) {
                let e0 = self.cur[b];
                let upper_eps = self.eps.seg_count(2 * b * half, half);
                let u_e0 = e0.min(upper_eps);
                self.next[2 * b] = u_e0;
                self.next[2 * b + 1] = e0 - u_e0;
            }
            std::mem::swap(&mut self.cur, &mut self.next);
        }
        // Leaf step: a leaf's quota is 1 for ε₀ (sorts up) and 0 for ε₁.
        let (tags, quota) = (&self.tags, &self.cur);
        self.gamma.fill_from(sz, |i| match tags.get(i) {
            Tag::One => true,
            Tag::Eps => quota[i] == 0,
            _ => false,
        });
        self.profile.quasisort_ops += (sz - 1) as u64;
        self.profile.rank_ops += (sz - 1) as u64;
        self.profile.quasisort_nanos += clock.elapsed_nanos();
        Ok(())
    }

    /// Convenience: ε-divide then bit-sort with target `len/2` — the full
    /// quasisort plan of Section 5.2, written into `settings`.
    pub fn plan_quasisort(
        &mut self,
        base: usize,
        settings: &mut RbnSettings,
    ) -> Result<(), PlanError> {
        self.eps_divide()?;
        let half = self.tags.len() / 2;
        self.plan_bitsort(half, base, settings);
        Ok(())
    }

    /// Fused Table 6 + Table 3: the complete quasisort plan (ε-divide, then
    /// bit-sort with target `len/2`) in a **single** backward wave.
    ///
    /// [`SweepScratch::plan_quasisort`] runs two tree sweeps with an `O(n)`
    /// per-leaf unpack/repack between them: the ε-divide wave materializes
    /// the γ sort-bit plane leaf by leaf (a branchy per-element pass over the
    /// tag planes), and the bit-sort wave immediately re-aggregates that
    /// plane into range counts. The fusion exploits the identity
    ///
    /// ```text
    /// γ(j, b) = n₁(j, b) + (n_ε(j, b) − ε₀(j, b))
    /// ```
    ///
    /// — the sort-bit count under a node is fully determined by the `1`/ε
    /// range counts (word-parallel popcounts) and the ε₀ quota *already
    /// travelling down* the ε-divide wave — so both backward phases ride one
    /// top-down pass and the γ plane is never materialized. Settings and
    /// error values are bit-for-bit those of
    /// [`SweepScratch::plan_quasisort`] (pinned by the tests below and by
    /// the fast-path equivalence suite in `brsmn-core`).
    ///
    /// The γ plane is left untouched (stale); use
    /// [`SweepScratch::plan_quasisort`] when you need to inspect it.
    pub fn plan_quasisort_fused(
        &mut self,
        base: usize,
        settings: &mut RbnSettings,
    ) -> Result<(), PlanError> {
        let sz = self.tags.len();
        let m = log2_exact(sz) as usize;
        if let Some(position) = self.tags.first_in_plane(TagPlane::Alpha) {
            return Err(PlanError::AlphaInQuasisort { position });
        }
        let counts = self.counts();
        if counts.n0 > sz / 2 || counts.n1 > sz / 2 {
            return Err(PlanError::HalfOverflow {
                n0: counts.n0,
                n1: counts.n1,
                half: sz / 2,
            });
        }
        let clock = ProfClock::start();
        self.tags.extract_plane(TagPlane::Eps, &mut self.eps);
        self.tags.extract_plane(TagPlane::One, &mut self.ones);
        self.profile.rank_nanos += clock.elapsed_nanos();
        self.ensure_levels(sz);
        self.ensure_quota_levels(sz);
        let clock = ProfClock::start();
        // Root of both waves: the bit-sort target is len/2, and the ε₀ quota
        // is n_ε − (n/2 − n₁) exactly as in `eps_divide`.
        self.cur[0] = sz / 2;
        self.cur_q[0] = counts.ne - (sz / 2 - counts.n1);
        for j in (1..=m).rev() {
            let half = 1usize << (j - 1);
            for b in 0..(sz >> j) {
                let s_node = self.cur[b];
                let e0 = self.cur_q[b];
                let u_lo = 2 * b * half;
                // ε-divide split (Table 6): the upper child takes as many ε₀
                // as it has ε leaves.
                let upper_eps = self.eps.seg_count(u_lo, half);
                let u_e0 = e0.min(upper_eps);
                // Bit-sort forward value (Table 3) without the γ plane:
                // sort-down leaves under the upper child are its 1s plus its
                // ε₁s, and ε₁ = ε − ε₀.
                let l0 = self.ones.seg_count(u_lo, half) + (upper_eps - u_e0);
                let s0 = s_node % half;
                let s1 = (s_node + l0) % half;
                let bset = ((s_node + l0) / half) % 2;
                let (b_val, b_comp) = if bset == 1 {
                    (SwitchSetting::Crossing, SwitchSetting::Parallel)
                } else {
                    (SwitchSetting::Parallel, SwitchSetting::Crossing)
                };
                binary_compact_setting_into(
                    settings.block_mut(j - 1, (base >> j) + b),
                    0,
                    s1,
                    b_comp,
                    b_val,
                );
                self.next[2 * b] = s0;
                self.next[2 * b + 1] = s1;
                self.next_q[2 * b] = u_e0;
                self.next_q[2 * b + 1] = e0 - u_e0;
            }
            std::mem::swap(&mut self.cur, &mut self.next);
            std::mem::swap(&mut self.cur_q, &mut self.next_q);
        }
        // Closed form: sz − 1 nodes, two segment counts (ε and 1 planes)
        // per node.
        self.profile.quasisort_ops += (sz - 1) as u64;
        self.profile.rank_ops += 2 * (sz - 1) as u64;
        self.profile.quasisort_nanos += clock.elapsed_nanos();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{eps_divide, plan_bitsort, plan_scatter};

    fn tag_of(code: usize) -> Tag {
        match code & 3 {
            0 => Tag::Zero,
            1 => Tag::One,
            2 => Tag::Alpha,
            _ => Tag::Eps,
        }
    }

    #[test]
    fn bitvec_rank_matches_naive() {
        let mut bv = BitVec::new();
        for len in [1usize, 2, 63, 64, 65, 128, 130, 200] {
            let bits: Vec<bool> = (0..len).map(|i| (i * 7 + len) % 3 == 0).collect();
            bv.fill_from(len, |i| bits[i]);
            assert_eq!(bv.len(), len);
            let mut acc = 0;
            for i in 0..=len {
                assert_eq!(bv.rank(i), acc, "len={len} i={i}");
                if i < len {
                    assert_eq!(bv.get(i), bits[i]);
                    acc += bits[i] as usize;
                }
            }
            assert_eq!(bv.count_ones(), acc);
            assert_eq!(bv.first_set(), bits.iter().position(|&b| b));
        }
    }

    #[test]
    fn rank_agrees_with_and_without_index() {
        let mut bv = BitVec::new();
        for len in [1usize, 63, 64, 65, 127, 256, 300] {
            bv.fill_from(len, |i| (i * 13 + len) % 5 < 2);
            let lazy: Vec<usize> = (0..=len).map(|i| bv.rank(i)).collect();
            bv.ensure_rank_index();
            for i in 0..=len {
                assert_eq!(bv.rank(i), lazy[i], "len={len} i={i}");
                assert_eq!(bv.rank(i), bv.rank_scalar(i), "len={len} i={i}");
            }
            // Idempotent, and a refill drops the index again.
            bv.ensure_rank_index();
            assert_eq!(bv.rank(len), lazy[len]);
        }
    }

    #[test]
    fn seg_count_matches_rank_oracle_at_every_node() {
        let mut bv = BitVec::new();
        for len in [1usize, 2, 63, 64, 65, 127, 128, 256, 512] {
            bv.fill_from(len, |i| (i * 7 + len) % 3 == 0);
            let cap = len.next_power_of_two();
            let mut seg = 1usize;
            while seg <= cap {
                for b in 0..len.div_ceil(seg) {
                    let (lo, hi) = (b * seg, ((b + 1) * seg).min(len));
                    let want = bv.rank_scalar(hi) - bv.rank_scalar(lo);
                    assert_eq!(bv.seg_count(lo, seg), want, "len={len} seg={seg} b={b}");
                }
                seg *= 2;
            }
        }
    }

    #[test]
    fn fill_from_codes_matches_fill_from() {
        // The branchless packing relies on Tag's declaration order matching
        // the (lo, hi) plane encoding — pin the discriminants first.
        assert_eq!(
            [Tag::Zero as u8, Tag::One as u8, Tag::Alpha as u8, Tag::Eps as u8],
            [0, 1, 2, 3]
        );
        let (mut branchy, mut branchless) = (TagVec::new(), TagVec::new());
        for len in [1usize, 63, 64, 65, 127, 256] {
            let tags: Vec<Tag> = (0..len).map(|i| tag_of(i * 5 + len)).collect();
            branchy.fill_from(len, |i| tags[i]);
            branchless.fill_from_codes(len, |i| tags[i] as u8);
            assert_eq!(branchless, branchy, "len={len}");
            for (i, &t) in tags.iter().enumerate() {
                assert_eq!(branchless.get(i), t, "len={len} i={i}");
            }
        }
    }

    #[test]
    fn sweep_profile_counts_are_exact_closed_forms() {
        let n = 64usize;
        let mut scratch = SweepScratch::new();
        scratch.set_tags(n, |i| tag_of(i * 11 + 2));
        let mut table = RbnSettings::identity(n);
        scratch.plan_scatter(0, 0, &mut table);
        let p = scratch.take_profile();
        assert_eq!(p.tag_derive_ops, n as u64);
        assert_eq!(p.scatter_ops, (n - 1) as u64);
        // Two segment counts per settled node, plus two per tie-walk step.
        assert!(p.rank_ops >= 2 * (n - 1) as u64, "rank_ops={}", p.rank_ops);
        assert_eq!(p.quasisort_ops, 0);
        // Draining left zeros behind.
        assert!(scratch.profile().is_empty());
        // A fused quasisort wave books under the quasisort category.
        scratch.set_tags_from_codes(n, |i| [0u8, 1, 3][i % 3]);
        scratch.plan_quasisort_fused(0, &mut table).unwrap();
        let p = scratch.take_profile();
        assert_eq!(p.tag_derive_ops, n as u64);
        assert_eq!(p.quasisort_ops, (n - 1) as u64);
        assert_eq!(p.rank_ops, 2 * (n - 1) as u64);
        assert_eq!(p.scatter_ops, 0);
    }

    #[test]
    fn tagvec_round_trips_and_counts() {
        let mut tv = TagVec::new();
        for len in [2usize, 8, 64, 65, 100] {
            let tags: Vec<Tag> = (0..len).map(|i| tag_of(i * 5 + 3)).collect();
            tv.fill_from(len, |i| tags[i]);
            for (i, &t) in tags.iter().enumerate() {
                assert_eq!(tv.get(i), t);
            }
            assert_eq!(tv.counts(), TagCounts::of(&tags));
            let mut plane = BitVec::new();
            for (p, want) in [
                (TagPlane::Zero, Tag::Zero),
                (TagPlane::One, Tag::One),
                (TagPlane::Alpha, Tag::Alpha),
                (TagPlane::Eps, Tag::Eps),
            ] {
                tv.extract_plane(p, &mut plane);
                for (i, &t) in tags.iter().enumerate() {
                    assert_eq!(plane.get(i), t == want, "len={len} i={i} {want:?}");
                }
                assert_eq!(tv.first_in_plane(p), tags.iter().position(|&t| t == want));
            }
        }
    }

    /// Satellite audit: every `1u64 << r`-style mask in this module must be
    /// guarded against `r == 64` (full tail word) and against tail words at
    /// lengths not a multiple of 64. Pin the boundary lengths, including the
    /// all-ones pattern that maximizes the damage of an unmasked tail.
    #[test]
    fn shift_overflow_boundaries_pinned() {
        let mut bv = BitVec::new();
        let mut tv = TagVec::new();
        for len in [1usize, 63, 64, 65, 127, 128, 191, 192, 255, 256, 257] {
            // All-ones: rank at word boundaries exercises the r == 0 / past-
            // the-last-word paths; plane masks must not leak phantom bits.
            bv.fill_from(len, |_| true);
            assert_eq!(bv.rank(len), len, "len={len}");
            assert_eq!(bv.count_ones(), len, "len={len}");
            for i in (0..=len).filter(|i| i % 63 == 0 || i % 64 == 0) {
                assert_eq!(bv.rank(i), i, "len={len} i={i}");
            }
            // All-Zero tags: the Zero plane is computed by negation, the
            // worst case for tail masking (bits past `len` read as Zero).
            tv.fill_from(len, |_| Tag::Zero);
            let c = tv.counts();
            assert_eq!((c.n0, c.n1, c.na, c.ne), (len, 0, 0, 0), "len={len}");
            assert_eq!(tv.first_in_plane(TagPlane::Zero), Some(0));
            assert_eq!(tv.first_in_plane(TagPlane::Eps), None);
            // All-ε: both planes all-ones in the tail word.
            tv.fill_from(len, |_| Tag::Eps);
            let c = tv.counts();
            assert_eq!((c.n0, c.n1, c.na, c.ne), (0, 0, 0, len), "len={len}");
            let mut plane = BitVec::new();
            tv.extract_plane(TagPlane::Eps, &mut plane);
            assert_eq!(plane.count_ones(), len, "len={len}");
            assert_eq!(plane.rank(len), len, "len={len}");
        }
    }

    /// The lane-blocked kernels must agree with the retained scalar oracles
    /// at every boundary length (satellite n ∈ {1, 63, 64, 65, 127} plus the
    /// block-boundary lengths of the [u64; LANES] layout).
    #[test]
    fn wide_lanes_match_scalar_oracles() {
        let mut tv = TagVec::new();
        let (mut wide, mut scalar) = (BitVec::new(), BitVec::new());
        for len in [1usize, 63, 64, 65, 127, 255, 256, 257, 300] {
            let tags: Vec<Tag> = (0..len).map(|i| tag_of(i * 11 + len)).collect();
            tv.fill_from(len, |i| tags[i]);
            assert_eq!(tv.counts(), tv.counts_scalar(), "len={len}");
            assert_eq!(tv.counts(), TagCounts::of(&tags), "len={len}");
            for plane in [TagPlane::Zero, TagPlane::One, TagPlane::Alpha, TagPlane::Eps] {
                tv.extract_plane(plane, &mut wide);
                tv.extract_plane_scalar(plane, &mut scalar);
                assert_eq!(wide, scalar, "len={len} {plane:?}");
                for i in 0..=len {
                    assert_eq!(wide.rank(i), scalar.rank_scalar(i), "len={len} i={i}");
                }
            }
        }
    }

    #[test]
    fn packed_bitsort_matches_reference_exhaustively_n8() {
        let n = 8;
        let mut scratch = SweepScratch::new();
        for pattern in 0..(1u32 << n) {
            let gamma: Vec<bool> = (0..n).map(|i| pattern >> i & 1 == 1).collect();
            for s in 0..n {
                let want = plan_bitsort(&gamma, s).settings;
                let mut got = RbnSettings::identity(n);
                scratch.set_gamma(n, |i| gamma[i]);
                scratch.plan_bitsort(s, 0, &mut got);
                assert_eq!(got, want, "pattern={pattern:08b} s={s}");
            }
        }
    }

    #[test]
    fn packed_scatter_matches_reference_exhaustively_n4() {
        let n = 4;
        let mut scratch = SweepScratch::new();
        for pattern in 0..(1usize << (2 * n)) {
            let tags: Vec<Tag> = (0..n).map(|i| tag_of(pattern >> (2 * i))).collect();
            for s in 0..n {
                let want = plan_scatter(&tags, s).settings;
                let mut got = RbnSettings::identity(n);
                scratch.set_tags(n, |i| tags[i]);
                scratch.plan_scatter(s, 0, &mut got);
                assert_eq!(got, want, "tags={tags:?} s={s}");
            }
        }
    }

    #[test]
    fn packed_scatter_matches_reference_randomized() {
        let mut scratch = SweepScratch::new();
        let mut state = 0x243F6A8885A308D3u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [8usize, 16, 64, 256] {
            for _ in 0..40 {
                let tags: Vec<Tag> = (0..n).map(|_| tag_of(rng() as usize)).collect();
                let s = rng() as usize % n;
                let want = plan_scatter(&tags, s).settings;
                let mut got = RbnSettings::identity(n);
                scratch.set_tags(n, |i| tags[i]);
                scratch.plan_scatter(s, 0, &mut got);
                assert_eq!(got, want, "n={n} s={s} tags={tags:?}");
            }
        }
    }

    #[test]
    fn packed_eps_divide_matches_reference() {
        let mut scratch = SweepScratch::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [2usize, 8, 64, 128] {
            let mut checked = 0;
            while checked < 30 {
                // ε-heavy draw so the half constraints usually hold.
                let tags: Vec<Tag> = (0..n)
                    .map(|_| match rng() % 4 {
                        0 => Tag::Zero,
                        1 => Tag::One,
                        _ => Tag::Eps,
                    })
                    .collect();
                let want = match eps_divide(&tags) {
                    Ok(plan) => plan,
                    Err(_) => continue,
                };
                scratch.set_tags(n, |i| tags[i]);
                scratch.eps_divide().unwrap();
                for (i, q) in want.qtags.iter().enumerate() {
                    assert_eq!(scratch.gamma().get(i), q.sort_bit(), "n={n} i={i}");
                }
                checked += 1;
            }
        }
    }

    #[test]
    fn packed_eps_divide_rejects_like_reference() {
        let mut scratch = SweepScratch::new();
        scratch.set_tags(2, |i| if i == 0 { Tag::Alpha } else { Tag::Eps });
        assert_eq!(
            scratch.eps_divide().unwrap_err(),
            PlanError::AlphaInQuasisort { position: 0 }
        );
        use Tag::*;
        let tags = [One, One, One, Eps];
        scratch.set_tags(4, |i| tags[i]);
        assert!(matches!(
            scratch.eps_divide().unwrap_err(),
            PlanError::HalfOverflow { n1: 3, .. }
        ));
    }

    #[test]
    fn packed_planners_write_at_block_offsets() {
        // Plan a 4-wide scatter at base 4 of an 8-wide table: only switch
        // indices [2, 4) of stages 0–1 may change.
        let n = 8;
        let tags = [Tag::Alpha, Tag::Eps, Tag::Zero, Tag::One];
        let mut scratch = SweepScratch::new();
        let mut table = RbnSettings::identity(n);
        scratch.set_tags(4, |i| tags[i]);
        scratch.plan_scatter(0, 4, &mut table);
        let want_local = plan_scatter(&tags, 0).settings;
        for j in 0..2 {
            assert_eq!(&table.stage(j)[2..4], want_local.stage(j));
            assert_eq!(&table.stage(j)[..2], &[SwitchSetting::Parallel; 2]);
        }
        assert_eq!(table.stage(2), &[SwitchSetting::Parallel; 4]);
    }

    #[test]
    fn quasisort_convenience_plans_both_phases() {
        use Tag::*;
        let tags = [One, Eps, Zero, One, Eps, Zero, Eps, Eps];
        let mut scratch = SweepScratch::new();
        let mut got = RbnSettings::identity(8);
        scratch.set_tags(8, |i| tags[i]);
        scratch.plan_quasisort(0, &mut got).unwrap();
        let (_, sort) = crate::plan::plan_quasisort(&tags).unwrap();
        assert_eq!(got, sort.settings);
    }

    #[test]
    fn fused_quasisort_matches_two_sweep_exhaustively_n8() {
        // Every 0/1/ε pattern of length 8 (α is rejected by both paths).
        let n = 8;
        let mut scratch = SweepScratch::new();
        for pattern in 0..3usize.pow(n as u32) {
            let tags: Vec<Tag> = (0..n)
                .map(|i| match pattern / 3usize.pow(i as u32) % 3 {
                    0 => Tag::Zero,
                    1 => Tag::One,
                    _ => Tag::Eps,
                })
                .collect();
            let mut want = RbnSettings::identity(n);
            scratch.set_tags(n, |i| tags[i]);
            let want_res = scratch.plan_quasisort(0, &mut want);
            let mut got = RbnSettings::identity(n);
            scratch.set_tags(n, |i| tags[i]);
            let got_res = scratch.plan_quasisort_fused(0, &mut got);
            assert_eq!(got_res, want_res, "tags={tags:?}");
            if want_res.is_ok() {
                assert_eq!(got, want, "tags={tags:?}");
            }
        }
    }

    #[test]
    fn fused_quasisort_matches_two_sweep_randomized() {
        let mut scratch = SweepScratch::new();
        let mut state = 0xD1B54A32D192ED03u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [2usize, 16, 64, 256, 1024] {
            let mut checked = 0;
            while checked < 25 {
                let tags: Vec<Tag> = (0..n)
                    .map(|_| match rng() % 4 {
                        0 => Tag::Zero,
                        1 => Tag::One,
                        _ => Tag::Eps,
                    })
                    .collect();
                let mut want = RbnSettings::identity(n);
                scratch.set_tags(n, |i| tags[i]);
                if scratch.plan_quasisort(0, &mut want).is_err() {
                    continue;
                }
                let mut got = RbnSettings::identity(n);
                scratch.set_tags(n, |i| tags[i]);
                scratch.plan_quasisort_fused(0, &mut got).unwrap();
                assert_eq!(got, want, "n={n}");
                checked += 1;
            }
        }
    }

    #[test]
    fn fused_quasisort_rejects_like_two_sweep() {
        let mut scratch = SweepScratch::new();
        let mut table = RbnSettings::identity(2);
        scratch.set_tags(2, |i| if i == 0 { Tag::Alpha } else { Tag::Eps });
        assert_eq!(
            scratch.plan_quasisort_fused(0, &mut table).unwrap_err(),
            PlanError::AlphaInQuasisort { position: 0 }
        );
        use Tag::*;
        let tags = [One, One, One, Eps];
        let mut table = RbnSettings::identity(4);
        scratch.set_tags(4, |i| tags[i]);
        assert!(matches!(
            scratch.plan_quasisort_fused(0, &mut table).unwrap_err(),
            PlanError::HalfOverflow { n1: 3, .. }
        ));
    }

    #[test]
    fn fused_quasisort_writes_at_block_offsets() {
        use Tag::*;
        let tags = [One, Eps, Zero, Eps];
        let mut scratch = SweepScratch::new();
        let mut table = RbnSettings::identity(8);
        scratch.set_tags(4, |i| tags[i]);
        scratch.plan_quasisort_fused(0, &mut table).unwrap();
        let mut want = RbnSettings::identity(8);
        scratch.set_tags(4, |i| tags[i]);
        scratch.plan_quasisort(0, &mut want).unwrap();
        assert_eq!(table, want);
        // The other block's slice stays identity.
        for j in 0..2 {
            assert_eq!(&table.stage(j)[2..4], &[SwitchSetting::Parallel; 2]);
        }
    }
}
