//! Direct verification of Lemmas 1–5 **in isolation**: one merging stage,
//! two half-length circular compact sequences in, one full-length compact
//! sequence out — exactly as stated in the paper's appendices, for every
//! legal parameter combination at small sizes.

use brsmn_rbn::{
    binary_compact_setting, compact_sequence, is_compact_at, trinary_compact_setting,
};
use brsmn_switch::{SwitchSetting, Tag};

/// Applies one `n × n` merging stage (switch `i` pairs lines `i`, `i+n/2`)
/// to tag lines under the given settings; returns output tags. Broadcast
/// neutralizes α/ε pairs into χ (rendered as `Zero`).
fn merge_stage(upper: &[Tag], lower: &[Tag], settings: &[SwitchSetting]) -> Vec<Tag> {
    let half = upper.len();
    assert_eq!(lower.len(), half);
    assert_eq!(settings.len(), half);
    let mut out = vec![Tag::Eps; 2 * half];
    for i in 0..half {
        let (u, l) = (upper[i], lower[i]);
        match settings[i] {
            SwitchSetting::Parallel => {
                out[i] = u;
                out[i + half] = l;
            }
            SwitchSetting::Crossing => {
                out[i] = l;
                out[i + half] = u;
            }
            SwitchSetting::UpperBroadcast => {
                assert_eq!(u, Tag::Alpha, "upper broadcast requires α on top");
                assert_eq!(l, Tag::Eps, "upper broadcast requires ε below");
                out[i] = Tag::Zero;
                out[i + half] = Tag::Zero; // both outputs are χ now
            }
            SwitchSetting::LowerBroadcast => {
                assert_eq!(u, Tag::Eps, "lower broadcast requires ε on top");
                assert_eq!(l, Tag::Alpha, "lower broadcast requires α below");
                out[i] = Tag::Zero;
                out[i + half] = Tag::Zero;
            }
        }
    }
    out
}

fn seq_tags(n: usize, s: usize, l: usize, gamma: Tag) -> Vec<Tag> {
    compact_sequence(n, s, l)
        .into_iter()
        .map(|g| if g { gamma } else { Tag::Zero })
        .collect()
}

/// Lemma 1: `C^{n/2}_{s0,l0}` and `C^{n/2}_{s1,l1}` merge to `C^n_{s,l}`
/// with `s0 = s mod n/2`, `s1 = (s+l0) mod n/2`,
/// `W^{n/2}_{0, s1; b̄, b}`, `b = ((s+l0) div n/2) mod 2`.
#[test]
fn lemma1_exhaustive() {
    for half in [1usize, 2, 4, 8] {
        let n = 2 * half;
        for s in 0..n {
            for l0 in 0..=half {
                for l1 in 0..=half {
                    let l = l0 + l1;
                    if l > n {
                        continue;
                    }
                    let s0 = s % half;
                    let s1 = (s + l0) % half;
                    let b = (s + l0) / half % 2;
                    let (bv, bc) = if b == 1 {
                        (SwitchSetting::Crossing, SwitchSetting::Parallel)
                    } else {
                        (SwitchSetting::Parallel, SwitchSetting::Crossing)
                    };
                    let settings = binary_compact_setting(n, 0, s1, bc, bv);
                    let upper = seq_tags(half, s0, l0, Tag::One);
                    let lower = seq_tags(half, s1, l1, Tag::One);
                    let out = merge_stage(&upper, &lower, &settings);
                    let gamma: Vec<bool> = out.iter().map(|&t| t == Tag::One).collect();
                    assert!(
                        is_compact_at(&gamma, s, l),
                        "n={n} s={s} l0={l0} l1={l1}: {gamma:?}"
                    );
                }
            }
        }
    }
}

/// Shared checker for Lemmas 2–5: merge `C^{n/2}_{s0,l0;χ,t0}` with
/// `C^{n/2}_{s1,l1;χ,t1}` (t0 ≠ t1) and verify `C^n_{s,l;χ,dominant}`.
fn check_elimination(
    half: usize,
    s: usize,
    l0: usize,
    l1: usize,
    upper_is_alpha: bool,
) {
    let n = 2 * half;
    let (lmax, lmin) = (l0.max(l1), l0.min(l1));
    let l = lmax - lmin;
    // Positions per the planner's backward rules.
    let (s0, s1, s_tmp, l_tmp, ucast) = if l0 >= l1 {
        (s % half, (s + l) % half, (s + l) % half, l1, SwitchSetting::Parallel)
    } else {
        ((s + l) % half, s % half, (s + l) % half, l0, SwitchSetting::Crossing)
    };
    let bcast = if upper_is_alpha {
        SwitchSetting::UpperBroadcast
    } else {
        SwitchSetting::LowerBroadcast
    };
    let ucomp = ucast.complement();
    let settings = if s + l < half {
        binary_compact_setting(n, s_tmp, l_tmp, ucast, bcast)
    } else if s < half {
        trinary_compact_setting(n, s_tmp, l_tmp, ucomp, bcast, ucast)
    } else if s + l < n {
        binary_compact_setting(n, s_tmp, l_tmp, ucomp, bcast)
    } else {
        trinary_compact_setting(n, s_tmp, l_tmp, ucast, bcast, ucomp)
    };

    let (upper_tag, lower_tag) = if upper_is_alpha {
        (Tag::Alpha, Tag::Eps)
    } else {
        (Tag::Eps, Tag::Alpha)
    };
    let upper = seq_tags(half, s0, l0, upper_tag);
    let lower = seq_tags(half, s1, l1, lower_tag);
    let out = merge_stage(&upper, &lower, &settings);

    // Dominant type run compact at s; recessive type gone.
    let dominant = if (l0 >= l1) == upper_is_alpha {
        Tag::Alpha
    } else {
        Tag::Eps
    };
    let recessive = if dominant == Tag::Alpha {
        Tag::Eps
    } else {
        Tag::Alpha
    };
    let run: Vec<bool> = out.iter().map(|&t| t == dominant).collect();
    assert!(
        is_compact_at(&run, s, l),
        "half={half} s={s} l0={l0} l1={l1} upper_alpha={upper_is_alpha}: {out:?}"
    );
    assert!(out.iter().all(|&t| t != recessive));
}

/// Lemma 2 (α above, l0 ≥ l1) and Lemma 3 (α above, l1 ≥ l0), all legal
/// parameters at n = 4, 8, 16.
#[test]
fn lemmas_2_and_3_exhaustive() {
    for half in [2usize, 4, 8] {
        let n = 2 * half;
        for l0 in 0..=half {
            for l1 in 0..=half {
                let l = l0.abs_diff(l1);
                for s in 0..n {
                    // The lemma preconditions bound the merged run: for
                    // elimination the dominant run must fit where the cases
                    // place it; all (s, l) with l ≤ half are covered by the
                    // four cases.
                    if l > half {
                        continue;
                    }
                    check_elimination(half, s, l0, l1, true);
                }
            }
        }
    }
}

/// Lemmas 4 and 5: the ε-above variants (swap α for ε, upper for lower
/// broadcast).
#[test]
fn lemmas_4_and_5_exhaustive() {
    for half in [2usize, 4, 8] {
        let n = 2 * half;
        for l0 in 0..=half {
            for l1 in 0..=half {
                let l = l0.abs_diff(l1);
                for s in 0..n {
                    if l > half {
                        continue;
                    }
                    check_elimination(half, s, l0, l1, false);
                }
            }
        }
    }
}
