//! Property-based verification of the paper's Theorems 1–3 on reverse banyan
//! networks, at sizes up to 512 with random inputs.

use brsmn_rbn::{
    clone_split, eps_divide, is_compact_at, plan_bitsort, plan_quasisort, plan_scatter, DomType,
};
use brsmn_switch::{Line, Tag};
use proptest::prelude::*;

/// Builds lines carrying their input index as payload.
fn lines_of(tags: &[Tag]) -> Vec<Line<usize>> {
    tags.iter()
        .enumerate()
        .map(|(i, &t)| {
            if t == Tag::Eps {
                Line::empty()
            } else {
                Line::with(t, i)
            }
        })
        .collect()
}

fn arb_tags(max_pow: u32) -> impl Strategy<Value = Vec<Tag>> {
    (1u32..=max_pow).prop_flat_map(|m| {
        proptest::collection::vec(
            prop_oneof![
                Just(Tag::Zero),
                Just(Tag::One),
                Just(Tag::Alpha),
                Just(Tag::Eps)
            ],
            1usize << m,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: for any 0/1 inputs and any starting position, the RBN
    /// produces the circular compact sequence — and the routing is a
    /// permutation that keeps each message's tag.
    #[test]
    fn theorem1_bitsort(m in 1u32..=9, pattern in proptest::collection::vec(any::<bool>(), 512), s in any::<usize>()) {
        let n = 1usize << m;
        let gamma = &pattern[..n];
        let s = s % n;
        let plan = plan_bitsort(gamma, s);
        let tags: Vec<Tag> = gamma.iter().map(|&g| if g { Tag::One } else { Tag::Zero }).collect();
        let out = plan.settings.run(lines_of(&tags), &mut clone_split).unwrap();

        // Compactness at exactly (s, l).
        let out_gamma: Vec<bool> = out.iter().map(|l| l.tag == Tag::One).collect();
        let l = gamma.iter().filter(|&&g| g).count();
        prop_assert!(is_compact_at(&out_gamma, s, l));

        // Permutation: every input index appears exactly once, with its tag.
        let mut seen = vec![false; n];
        for line in &out {
            let i = line.payload.unwrap();
            prop_assert!(!seen[i]);
            seen[i] = true;
            prop_assert_eq!(line.tag == Tag::One, gamma[i]);
        }
    }

    /// Theorem 3: for ANY tag values, the surplus of the dominating type is
    /// compacted at any requested position, the recessive type is fully
    /// eliminated, and message conservation holds:
    /// each α becomes a 0 copy and a 1 copy, each χ passes through unchanged.
    #[test]
    fn theorem3_scatter(tags in arb_tags(9), s in any::<usize>()) {
        let n = tags.len();
        let s = s % n;
        let plan = plan_scatter(&tags, s);
        let root = plan.root();
        let na = tags.iter().filter(|&&t| t == Tag::Alpha).count();
        let ne = tags.iter().filter(|&&t| t == Tag::Eps).count();
        prop_assert_eq!(root.l, na.abs_diff(ne));
        if na != ne {
            prop_assert_eq!(root.ty == DomType::Alpha, na > ne);
        }

        let out = plan.settings.run(lines_of(&tags), &mut clone_split).unwrap();

        // Dominating-type run compact at s; recessive type eliminated.
        let (dom, rec) = if root.ty == DomType::Alpha { (Tag::Alpha, Tag::Eps) } else { (Tag::Eps, Tag::Alpha) };
        let dom_positions: Vec<bool> = out.iter().map(|l| l.tag == dom).collect();
        prop_assert!(is_compact_at(&dom_positions, s, root.l));
        prop_assert!(out.iter().all(|l| l.tag != rec));

        // Conservation: χ inputs arrive once with the same tag; each
        // eliminated α yields a 0 copy and a 1 copy.
        let eliminated = na.min(ne);
        let mut zero_from_alpha = 0usize;
        let mut one_from_alpha = 0usize;
        let mut chi_seen = vec![0usize; n];
        for line in &out {
            match line.tag {
                Tag::Zero | Tag::One => {
                    let i = line.payload.unwrap();
                    match tags[i] {
                        Tag::Alpha => {
                            if line.tag == Tag::Zero { zero_from_alpha += 1 } else { one_from_alpha += 1 }
                        }
                        t => {
                            prop_assert_eq!(line.tag, t, "χ message changed tag");
                            chi_seen[i] += 1;
                        }
                    }
                }
                Tag::Alpha => {
                    let i = line.payload.unwrap();
                    prop_assert_eq!(tags[i], Tag::Alpha, "surviving α must be an input α");
                }
                Tag::Eps => {}
            }
        }
        prop_assert_eq!(zero_from_alpha, eliminated);
        prop_assert_eq!(one_from_alpha, eliminated);
        for (i, &t) in tags.iter().enumerate() {
            if t.is_chi() {
                prop_assert_eq!(chi_seen[i], 1, "χ input {} lost or duplicated", i);
            }
        }
    }

    /// Theorem 2 output counts: when nα ≤ nε (the BSN situation), the scatter
    /// output satisfies n̂0 = n0 + nα, n̂1 = n1 + nα, n̂ε = nε − nα, n̂α = 0.
    #[test]
    fn theorem2_output_counts(tags in arb_tags(8)) {
        let na = tags.iter().filter(|&&t| t == Tag::Alpha).count();
        let ne = tags.iter().filter(|&&t| t == Tag::Eps).count();
        prop_assume!(na <= ne);
        let n0 = tags.iter().filter(|&&t| t == Tag::Zero).count();
        let n1 = tags.iter().filter(|&&t| t == Tag::One).count();

        let plan = plan_scatter(&tags, 0);
        let out = plan.settings.run(lines_of(&tags), &mut clone_split).unwrap();
        let count = |t: Tag| out.iter().filter(|l| l.tag == t).count();
        prop_assert_eq!(count(Tag::Zero), n0 + na);
        prop_assert_eq!(count(Tag::One), n1 + na);
        prop_assert_eq!(count(Tag::Eps), ne - na);
        prop_assert_eq!(count(Tag::Alpha), 0);
    }

    /// Quasisorting (Section 5.2): with tags {0,1,ε} and each message tag at
    /// most n/2 times, all 0s route to the upper half, all 1s to the lower
    /// half, and the routing is a permutation.
    #[test]
    fn quasisort_separates_halves(m in 1u32..=9, raw in proptest::collection::vec(0u8..3, 512)) {
        let n = 1usize << m;
        let mut tags: Vec<Tag> = raw[..n].iter().map(|&r| match r {
            0 => Tag::Zero,
            1 => Tag::One,
            _ => Tag::Eps,
        }).collect();
        // Enforce the per-half capacity by downgrading surplus to ε.
        for want in [Tag::Zero, Tag::One] {
            let mut count = 0usize;
            for t in tags.iter_mut() {
                if *t == want {
                    count += 1;
                    if count > n / 2 {
                        *t = Tag::Eps;
                    }
                }
            }
        }

        let (divide, sort) = plan_quasisort(&tags).unwrap();
        prop_assert_eq!(divide.qtags.iter().filter(|q| q.sort_bit()).count(), n / 2);

        let out = sort.settings.run(lines_of(&tags), &mut clone_split).unwrap();
        for (pos, line) in out.iter().enumerate() {
            if pos < n / 2 {
                prop_assert_ne!(line.tag, Tag::One);
            } else {
                prop_assert_ne!(line.tag, Tag::Zero);
            }
            if let Some(i) = line.payload {
                prop_assert_eq!(line.tag, tags[i]);
            }
        }
        let mut payloads: Vec<usize> = out.iter().filter_map(|l| l.payload).collect();
        payloads.sort_unstable();
        let expect: Vec<usize> = (0..n).filter(|&i| tags[i] != Tag::Eps).collect();
        prop_assert_eq!(payloads, expect);
    }

    /// The ε-divide invariants (Eqs. 6–9) hold at every node for random
    /// quasisort inputs.
    #[test]
    fn eps_divide_invariants(m in 1u32..=8, raw in proptest::collection::vec(0u8..4, 256)) {
        let n = 1usize << m;
        let mut tags: Vec<Tag> = raw[..n].iter().map(|&r| match r {
            0 => Tag::Zero,
            1 => Tag::One,
            _ => Tag::Eps,
        }).collect();
        for want in [Tag::Zero, Tag::One] {
            let mut count = 0usize;
            for t in tags.iter_mut() {
                if *t == want {
                    count += 1;
                    if count > n / 2 { *t = Tag::Eps; }
                }
            }
        }
        let plan = eps_divide(&tags).unwrap();
        for j in 0..=(m as usize) {
            for b in 0..(n >> j) {
                let (e0, e1) = plan.quotas[j][b];
                prop_assert_eq!(e0 + e1, plan.n_eps[j][b]);
            }
        }
        for j in 1..=(m as usize) {
            for b in 0..(n >> j) {
                let (e0, e1) = plan.quotas[j][b];
                let (u0, u1) = plan.quotas[j - 1][2 * b];
                let (l0, l1) = plan.quotas[j - 1][2 * b + 1];
                prop_assert_eq!(e0, u0 + l0);
                prop_assert_eq!(e1, u1 + l1);
            }
        }
    }
}

/// Exhaustive Theorem 3 check at n = 4: all 4^4 tag combinations × all 4
/// starting positions.
#[test]
fn theorem3_exhaustive_n4() {
    let all = [Tag::Zero, Tag::One, Tag::Alpha, Tag::Eps];
    for a in all {
        for b in all {
            for c in all {
                for d in all {
                    let tags = [a, b, c, d];
                    for s in 0..4 {
                        let plan = plan_scatter(&tags, s);
                        let root = plan.root();
                        let out = plan
                            .settings
                            .run(lines_of(&tags), &mut clone_split)
                            .unwrap_or_else(|e| panic!("{tags:?} s={s}: {e}"));
                        let dom = if root.ty == DomType::Alpha {
                            Tag::Alpha
                        } else {
                            Tag::Eps
                        };
                        let dom_pos: Vec<bool> = out.iter().map(|l| l.tag == dom).collect();
                        assert!(
                            is_compact_at(&dom_pos, s, root.l),
                            "{tags:?} s={s} out tags {:?}",
                            out.iter().map(|l| l.tag).collect::<Vec<_>>()
                        );
                    }
                }
            }
        }
    }
}

/// Exhaustive Theorem 1 at n = 4 for every pattern and target.
#[test]
fn theorem1_exhaustive_n4() {
    for pattern in 0..16u32 {
        let gamma: Vec<bool> = (0..4).map(|i| pattern >> i & 1 == 1).collect();
        for s in 0..4 {
            let plan = plan_bitsort(&gamma, s);
            let tags: Vec<Tag> = gamma
                .iter()
                .map(|&g| if g { Tag::One } else { Tag::Zero })
                .collect();
            let out = plan
                .settings
                .run(lines_of(&tags), &mut clone_split)
                .unwrap();
            let out_gamma: Vec<bool> = out.iter().map(|l| l.tag == Tag::One).collect();
            let l = gamma.iter().filter(|&&g| g).count();
            assert!(is_compact_at(&out_gamma, s, l), "pattern={pattern} s={s}");
        }
    }
}

/// A large deterministic smoke test: n = 1024 scatter + quasisort pipeline.
#[test]
fn large_scatter_then_quasisort_pipeline() {
    let n = 1024usize;
    // Deterministic pseudo-random tags satisfying the BSN constraints:
    // alternate α/ε blocks and sprinkle 0/1.
    let tags: Vec<Tag> = (0..n)
        .map(|i| match (i * 2654435761usize) >> 28 & 7 {
            0 => Tag::Alpha,
            1..=3 => Tag::Eps,
            4 | 5 => Tag::Zero,
            _ => Tag::One,
        })
        .collect();
    let counts = brsmn_switch::tag::TagCounts::of(&tags);
    assert!(counts.satisfies_bsn_input_constraints(), "{counts:?}");

    let scatter = plan_scatter(&tags, 0);
    let mid = scatter
        .settings
        .run(lines_of(&tags), &mut clone_split)
        .unwrap();
    let mid_tags: Vec<Tag> = mid.iter().map(|l| l.tag).collect();
    assert!(mid_tags.iter().all(|&t| t != Tag::Alpha));

    let (_, sort) = plan_quasisort(&mid_tags).unwrap();
    let out = sort.settings.run(mid, &mut clone_split).unwrap();
    for (pos, line) in out.iter().enumerate() {
        if pos < n / 2 {
            assert_ne!(line.tag, Tag::One, "position {pos}");
        } else {
            assert_ne!(line.tag, Tag::Zero, "position {pos}");
        }
    }
    // Message count: every 0/1 input + two copies per α.
    let msgs = out.iter().filter(|l| l.tag != Tag::Eps).count();
    assert_eq!(msgs, counts.n0 + counts.n1 + 2 * counts.na);
}
