//! Oracle-equivalence suite for the cold-path constant shrink: the
//! carried-rank sweeps and the branchless code packing must be bit-identical
//! to the retained oracles (`rank_scalar`, from-assignment derivation) at
//! awkward lengths — word boundaries, single bits, partial tail words — and
//! across ragged SoA batches.

use brsmn_rbn::{BatchSweep, BitVec, RbnSettings, SweepScratch};
use brsmn_switch::Tag;
use proptest::prelude::*;

/// The lengths the carried-rank machinery must get right: 1 (degenerate),
/// 63/64/65 (word boundary), 127 (partial tail), 256 (whole lane block).
const LENS: [usize; 6] = [1, 63, 64, 65, 127, 256];

fn tag_of(code: u8) -> Tag {
    match code & 3 {
        0 => Tag::Zero,
        1 => Tag::One,
        2 => Tag::Alpha,
        _ => Tag::Eps,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lazy-index `rank` answers exactly like the scalar word-scan oracle,
    /// before and after the index is built.
    #[test]
    fn carried_rank_matches_rank_scalar(bits in proptest::collection::vec(any::<bool>(), 256)) {
        for &len in &LENS {
            let mut v = BitVec::new();
            v.fill_from(len, |i| bits[i]);
            for i in 0..=len {
                prop_assert_eq!(v.rank(i), v.rank_scalar(i), "len={} i={} (no index)", len, i);
            }
            v.ensure_rank_index();
            for i in 0..=len {
                prop_assert_eq!(v.rank(i), v.rank_scalar(i), "len={} i={} (indexed)", len, i);
            }
        }
    }

    /// Every aligned segment count equals the `rank_scalar` difference over
    /// the same range — the queries the carried sweeps actually issue.
    #[test]
    fn seg_count_matches_rank_scalar(bits in proptest::collection::vec(any::<bool>(), 256)) {
        for &len in &LENS {
            let mut v = BitVec::new();
            v.fill_from(len, |i| bits[i]);
            let cap = len.next_power_of_two();
            let mut seg = 1usize;
            while seg <= cap {
                for b in 0..len.div_ceil(seg) {
                    let (lo, hi) = (b * seg, ((b + 1) * seg).min(len));
                    prop_assert_eq!(
                        v.seg_count(lo, seg),
                        v.rank_scalar(hi) - v.rank_scalar(lo),
                        "len={} seg={} b={}", len, seg, b
                    );
                }
                seg *= 2;
            }
        }
    }

    /// Branchless discriminant packing (the incremental derivation) equals
    /// the from-assignment match oracle, scalar and SoA.
    #[test]
    fn code_packing_matches_from_assignment(raw in proptest::collection::vec(0u8..4, 256)) {
        for &len in &LENS {
            let mut want = SweepScratch::new();
            let mut got = SweepScratch::new();
            want.set_tags(len, |i| tag_of(raw[i]));
            got.set_tags_from_codes(len, |i| tag_of(raw[i]) as u8);
            prop_assert_eq!(want.tags(), got.tags(), "len={}", len);
            prop_assert_eq!(want.counts(), got.counts(), "len={}", len);
        }
    }

    /// Carried-rank scalar scatter + fused quasisort settings are
    /// bit-identical per frame to the ragged SoA lockstep planner, at every
    /// frame count (the SoA layout has no partial-batch special case to
    /// hide in).
    #[test]
    fn ragged_batches_match_per_frame_sweeps(
        raw in proptest::collection::vec(0u8..4, 64 * 256),
        frames_idx in 0usize..4,
        n_idx in 0usize..3,
    ) {
        let frames = [1usize, 3, 7, 64][frames_idx];
        let n = [4usize, 64, 256][n_idx];
        let mut batch = BatchSweep::new();
        let mut scratch = SweepScratch::new();
        let tags: Vec<Vec<Tag>> = (0..frames)
            .map(|f| (0..n).map(|i| tag_of(raw[f * 256 + i])).collect())
            .collect();
        batch.begin(frames, n);
        for (f, t) in tags.iter().enumerate() {
            batch.load_frame_codes(f, |i| t[i] as u8);
        }
        let mut got: Vec<RbnSettings> = (0..frames).map(|_| RbnSettings::identity(n)).collect();
        batch.plan_scatter_all(0, 0, &mut got);
        for (f, t) in tags.iter().enumerate() {
            let mut want = RbnSettings::identity(n);
            scratch.set_tags(n, |i| t[i]);
            scratch.plan_scatter(0, 0, &mut want);
            prop_assert_eq!(&got[f], &want, "scatter n={} frames={} f={}", n, frames, f);
        }

        // Quasisort needs α-free frames within the half-capacity bound;
        // remap α → ε and skip infeasible draws.
        let qtags: Vec<Vec<Tag>> = tags
            .iter()
            .map(|t| t.iter().map(|&x| if x == Tag::Alpha { Tag::Eps } else { x }).collect())
            .collect();
        let feasible = qtags.iter().all(|t| {
            let n0 = t.iter().filter(|&&x| x == Tag::Zero).count();
            let n1 = t.iter().filter(|&&x| x == Tag::One).count();
            n0 <= n / 2 && n1 <= n / 2
        });
        if feasible {
            for (f, t) in qtags.iter().enumerate() {
                batch.load_frame_codes(f, |i| t[i] as u8);
            }
            batch.plan_quasisort_fused_all(0, &mut got).unwrap();
            for (f, t) in qtags.iter().enumerate() {
                let mut want = RbnSettings::identity(n);
                scratch.set_tags(n, |i| t[i]);
                scratch.plan_quasisort_fused(0, &mut want).unwrap();
                prop_assert_eq!(&got[f], &want, "quasisort n={} frames={} f={}", n, frames, f);
            }
        }
    }
}
