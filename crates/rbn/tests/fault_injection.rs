//! Fault injection: corrupting switch settings must be *detectable* — either
//! the fabric's legality checks fire (illegal broadcast pairing) or the
//! output violates the compact-sequence postconditions the planners
//! guarantee. No corruption may silently pass verification.

use brsmn_rbn::{clone_split, is_compact_at, plan_bitsort, plan_scatter, DomType};
use brsmn_switch::{Line, SwitchSetting, Tag};

fn lines_of(tags: &[Tag]) -> Vec<Line<usize>> {
    tags.iter()
        .enumerate()
        .map(|(i, &t)| {
            if t == Tag::Eps {
                Line::empty()
            } else {
                Line::with(t, i)
            }
        })
        .collect()
}

/// Every single-switch flip of a bit-sort plan is either *detected* (the
/// output is no longer compact at (s, l)) or provably *harmless* (the
/// flipped switch carried two equal tags, so the output still meets the
/// full sorting specification — bit sorting does not fix positions within a
/// run).
#[test]
fn bitsort_single_switch_corruptions_detected_or_harmless() {
    let gamma = [true, false, true, true, false, false, true, false];
    let tags: Vec<Tag> = gamma
        .iter()
        .map(|&g| if g { Tag::One } else { Tag::Zero })
        .collect();
    let s = 4usize;
    let l = gamma.iter().filter(|&&g| g).count();
    let plan = plan_bitsort(&gamma, s);
    let n = tags.len();

    let mut relevant_flips = 0usize;
    for stage in 0..plan.settings.num_stages() {
        // Tags entering this stage: run the prefix (later stages parallel
        // leave lines in place).
        let mut prefix = plan.settings.clone();
        for later in stage..plan.settings.num_stages() {
            for sw in prefix.stage_mut(later) {
                *sw = brsmn_switch::SwitchSetting::Parallel;
            }
        }
        let entering = prefix.run(lines_of(&tags), &mut clone_split).unwrap();

        for idx in 0..n / 2 {
            let original = plan.settings.stage(stage)[idx];
            let mut corrupted = plan.settings.clone();
            corrupted.stage_mut(stage)[idx] = original.complement();
            let out = corrupted
                .run(lines_of(&tags), &mut clone_split)
                .expect("unicast settings never raise switch errors");
            let out_gamma: Vec<bool> = out.iter().map(|li| li.tag == Tag::One).collect();
            let still_compact = is_compact_at(&out_gamma, s, l);

            // The two lines this switch pairs (stage j pairs bit-j
            // complements; switch idx covers upper line u with bit j = 0).
            let bit = 1usize << stage;
            let u = ((idx >> stage) << (stage + 1)) | (idx & (bit - 1));
            let tags_differ = entering[u].tag != entering[u | bit].tag;
            if tags_differ {
                relevant_flips += 1;
                assert!(
                    !still_compact,
                    "flip at stage {stage} switch {idx} with distinct tags went unnoticed"
                );
            } else {
                assert!(
                    still_compact,
                    "equal-tag flip at stage {stage} switch {idx} must be harmless"
                );
            }
        }
    }
    assert!(relevant_flips > 0, "test exercised no distinct-tag switches");
}

/// Replacing a legitimate broadcast with a unicast setting leaves an `α`
/// (or surplus `ε`) in the output — caught by the α-elimination check.
#[test]
fn scatter_dropped_broadcast_detected() {
    use Tag::*;
    let tags = [One, Alpha, Eps, Zero, Eps, Alpha, Eps, Eps];
    let plan = plan_scatter(&tags, 0);
    assert_eq!(plan.root().ty, DomType::Eps);

    // Locate a broadcast switch and neutralize it.
    let mut found = false;
    for stage in 0..plan.settings.num_stages() {
        for idx in 0..4 {
            let s = plan.settings.stage(stage)[idx];
            if matches!(
                s,
                SwitchSetting::UpperBroadcast | SwitchSetting::LowerBroadcast
            ) {
                found = true;
                let mut corrupted = plan.settings.clone();
                corrupted.stage_mut(stage)[idx] = SwitchSetting::Parallel;
                match corrupted.run(lines_of(&tags), &mut clone_split) {
                    // A later broadcast may now see the wrong pair: caught.
                    Err(_) => {}
                    // Or the surviving α reaches the output: caught.
                    Ok(out) => {
                        assert!(
                            out.iter().any(|l| l.tag == Alpha),
                            "dropped broadcast at stage {stage} switch {idx} went unnoticed"
                        );
                    }
                }
            }
        }
    }
    assert!(found, "test needs at least one broadcast switch");
}

/// Inserting a broadcast where none belongs trips the fabric's legality
/// check (broadcasts demand an α/ε pairing).
#[test]
fn spurious_broadcast_rejected() {
    use Tag::*;
    let tags = [Zero, One, Zero, One];
    let plan = plan_bitsort(&[false, true, false, true], 2);
    for stage in 0..2 {
        for idx in 0..2 {
            for bcast in [SwitchSetting::UpperBroadcast, SwitchSetting::LowerBroadcast] {
                let mut corrupted = plan.settings.clone();
                corrupted.stage_mut(stage)[idx] = bcast;
                let err = corrupted
                    .run(lines_of(&tags), &mut clone_split)
                    .expect_err("broadcast on χ/χ must be illegal");
                assert_eq!(err.setting, bcast);
            }
        }
    }
}

/// Exhaustive single-flip corruption of a scatter plan at n = 8: every
/// corruption is either observable (error, surviving recessive tag, broken
/// compact run, message loss/duplication, tag inconsistency) or the output
/// still satisfies the complete scatter specification — i.e. the flip was
/// semantically harmless.
#[test]
fn scatter_exhaustive_single_flips_observable_or_harmless() {
    use Tag::*;
    let tags = [Alpha, Eps, Zero, Eps, One, Alpha, Eps, Eps];
    let s_target = 3usize;
    let plan = plan_scatter(&tags, s_target);
    let root = plan.root();

    // Full specification check (Theorems 2–3 for this instance).
    let meets_spec = |out: &[Line<usize>]| -> bool {
        let eps_run: Vec<bool> = out.iter().map(|l| l.tag == Eps).collect();
        if !is_compact_at(&eps_run, s_target, root.l) {
            return false;
        }
        if out.iter().any(|l| l.tag == Alpha) {
            return false;
        }
        // χ inputs arrive once with their own tag; each α yields one 0 copy
        // and one 1 copy.
        let mut chi = vec![0usize; tags.len()];
        let mut alpha_copies = vec![(0usize, 0usize); tags.len()];
        for l in out {
            if let Some(i) = l.payload {
                match tags[i] {
                    Alpha => {
                        if l.tag == Zero {
                            alpha_copies[i].0 += 1;
                        } else if l.tag == One {
                            alpha_copies[i].1 += 1;
                        } else {
                            return false;
                        }
                    }
                    t if t.is_chi() => {
                        if l.tag != t {
                            return false;
                        }
                        chi[i] += 1;
                    }
                    _ => return false,
                }
            }
        }
        tags.iter().enumerate().all(|(i, &t)| match t {
            Alpha => alpha_copies[i] == (1, 1),
            Zero | One => chi[i] == 1,
            Eps => true,
        })
    };

    let mut detected_count = 0usize;
    let mut harmless_count = 0usize;
    for stage in 0..plan.settings.num_stages() {
        for idx in 0..4 {
            let original = plan.settings.stage(stage)[idx];
            for code in 0..4u8 {
                let replacement = SwitchSetting::from_code(code).unwrap();
                if replacement == original {
                    continue;
                }
                let mut corrupted = plan.settings.clone();
                corrupted.stage_mut(stage)[idx] = replacement;
                match corrupted.run(lines_of(&tags), &mut clone_split) {
                    Err(_) => detected_count += 1,
                    Ok(out) => {
                        if meets_spec(&out) {
                            harmless_count += 1;
                        } else {
                            detected_count += 1;
                        }
                    }
                }
            }
        }
    }
    // The point: nothing falls through the spec check, and corruption is
    // overwhelmingly detected.
    assert!(detected_count > harmless_count, "{detected_count} vs {harmless_count}");
}
