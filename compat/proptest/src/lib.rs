//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, range / `any` / `Just` / tuple /
//! collection / `prop_oneof!` strategies, `prop_map` / `prop_flat_map`
//! adapters, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate: inputs are sampled from a deterministic
//! per-test RNG (seeded from the test name, so failures reproduce across
//! runs) and failing cases are **not shrunk** — the failing input is printed
//! as-is via the assertion message.

#![forbid(unsafe_code)]

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so each property test draws a
    /// reproducible but distinct sequence.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

/// Per-test configuration (`#![proptest_config(ProptestConfig::with_cases(N))]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config requiring `cases` successful runs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the input; try another sample.
    Reject,
}

pub mod strategy {
    //! Sampling-only strategies.

    use super::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then samples from the strategy `f` builds
        /// from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice among same-typed strategies (`prop_oneof!`).
    pub struct OneOf<S> {
        options: Vec<S>,
    }

    impl<S: Strategy> OneOf<S> {
        /// Builds a uniform choice over `options` (must be non-empty).
        pub fn new(options: Vec<S>) -> OneOf<S> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T` (`any::<bool>()`, `any::<u64>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Size specification for [`vec()`]: an exact length or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(strategy, len)` / `vec(strategy, lo..hi)`: vectors whose
    /// elements are drawn from `strategy`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option<T>` strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy returned by [`weighted`].
    pub struct WeightedOption<S> {
        p_some: f64,
        inner: S,
    }

    /// `Some(sample)` with probability `p_some`, `None` otherwise.
    pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> WeightedOption<S> {
        WeightedOption { p_some, inner }
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.chance(self.p_some) {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Defines property-test functions: see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __cfg.cases.saturating_mul(20).max(100);
            while __passed < __cfg.cases {
                __attempts += 1;
                if __attempts > __max_attempts {
                    panic!(
                        "proptest `{}`: gave up after {} attempts ({} of {} cases passed; too many prop_assume! rejections)",
                        stringify!($name), __attempts, __passed, __cfg.cases
                    );
                }
                let ($($pat,)+) = ( $( ($strat).sample(&mut __rng), )+ );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("proptest `{}` failed on case {}: {}", stringify!($name), __passed + 1, __msg);
                    }
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional context format args.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// `prop_assert_ne!(left, right)` with optional context format args.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), __l
            )));
        }
    }};
}

/// `prop_assume!(cond)`: reject the sampled input without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies of the same type: `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($strat),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 3usize..10, y in 1u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_spec(xs in crate::collection::vec(any::<bool>(), 5),
                                    ys in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert_eq!(xs.len(), 5);
            prop_assert!((2..6).contains(&ys.len()));
            prop_assert!(ys.iter().all(|&b| b < 4));
        }

        #[test]
        fn flat_map_and_assume(n in (1u32..=4).prop_flat_map(|m| Just(1usize << m))) {
            prop_assume!(n >= 4);
            prop_assert!(n.is_power_of_two());
            prop_assert!(n <= 16);
        }

        #[test]
        fn oneof_hits_every_arm(xs in crate::collection::vec(prop_oneof![Just(0u8), Just(1), Just(2)], 64)) {
            prop_assert!(xs.iter().all(|&x| x <= 2));
        }
    }

    #[test]
    fn runner_invokes_cases() {
        ranges_sample_in_bounds();
        vec_lengths_respect_spec();
        flat_map_and_assume();
        oneof_hits_every_arm();
    }
}
