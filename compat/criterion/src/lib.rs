//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`Throughput`],
//! and the [`criterion_group!`] / [`criterion_main!`] entry points — with a
//! simple warmup-then-measure timing loop instead of criterion's statistical
//! machinery. Each benchmark prints a single `name ... time: X/iter` line.
//!
//! Respects `--bench` in argv (ignored) and runs everything; filtering and
//! HTML reports are not implemented.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement harness handed to each registered bench function.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            warmup: Duration::from_millis(60),
            measure: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Applies CLI configuration. The stub accepts and ignores all flags so
    /// `cargo bench -- --bench` style invocations keep working.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.warmup, self.measure, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the per-iteration element/byte count used to report rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub's fixed time window ignores it.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(
            &label,
            self.criterion.warmup,
            self.criterion.measure,
            self.throughput,
            &mut f,
        );
        self
    }

    /// Runs one benchmark that borrows a prepared input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op in the stub; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// A `function/parameter` label for parameterized benchmarks.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("plan_scatter", 256)` renders as `plan_scatter/256`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A label with only a parameter component.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    mode: BenchMode,
    total: Duration,
    iters: u64,
}

enum BenchMode {
    Warmup { until: Instant },
    Measure { until: Instant },
}

impl Bencher {
    /// Calls `routine` repeatedly until the current phase's time window
    /// closes, accumulating elapsed time and iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let until = match self.mode {
            BenchMode::Warmup { until } => until,
            BenchMode::Measure { until } => until,
        };
        loop {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.iters += 1;
            if Instant::now() >= until {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    warmup: Duration,
    measure: Duration,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        mode: BenchMode::Warmup {
            until: Instant::now() + warmup,
        },
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);

    let mut b = Bencher {
        mode: BenchMode::Measure {
            until: Instant::now() + measure,
        },
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);

    if b.iters == 0 {
        println!("{label:<48} (no iterations recorded)");
        return;
    }
    let ns_per_iter = b.total.as_nanos() as f64 / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.1} Melem/s", n as f64 / ns_per_iter * 1e3),
        Throughput::Bytes(n) => format!(", {:.1} MiB/s", n as f64 / ns_per_iter * 1e3 / 1.048_576),
    });
    println!(
        "{label:<48} time: {}/iter ({} iters){}",
        format_ns(ns_per_iter),
        b.iters,
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Registers benchmark functions under a group name, mirroring criterion's
/// `criterion_group!(benches, f1, f2)` form.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_iters() {
        let mut c = Criterion {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(8));
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", 3), &input, |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn id_formats_as_slash_pair() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
    }
}
