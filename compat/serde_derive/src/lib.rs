//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The sandbox this workspace builds in has no access to crates.io, so the
//! real `serde`/`serde_derive` pair is replaced by the value-tree
//! implementation in `compat/serde`. This crate provides the matching
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros: a hand-rolled
//! token walk (no `syn`/`quote`) that supports the item shapes used in this
//! workspace — structs with named fields, tuple structs, unit structs, and
//! enums with unit / tuple / struct variants, with plain (unbounded) type
//! parameters.
//!
//! Data model (mirrors serde's externally-tagged default):
//! * named struct  → JSON object keyed by field name;
//! * newtype struct → the inner value;
//! * tuple struct  → array;
//! * unit variant  → the variant name as a string;
//! * tuple/struct variant → one-entry object `{ "Variant": payload }`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Body {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

/// Derives the compat `serde::Serialize` trait (`fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives the compat `serde::Deserialize` trait (`fn from_value(&Value) -> Result<Self, _>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&toks, &mut i);

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;

    let generics = parse_generics(&toks, &mut i);

    match kind.as_str() {
        "enum" => {
            // Skip a possible where-clause: scan to the brace group.
            while i < toks.len() {
                if let TokenTree::Group(g) = &toks[i] {
                    if g.delimiter() == Delimiter::Brace {
                        return Item { name, generics, body: Body::Enum(parse_variants(g.stream())) };
                    }
                }
                i += 1;
            }
            panic!("enum `{name}` has no body");
        }
        "struct" => {
            while i < toks.len() {
                match &toks[i] {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                        return Item { name, generics, body: Body::Named(parse_named_fields(g.stream())) };
                    }
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                        return Item { name, generics, body: Body::Tuple(count_tuple_fields(g.stream())) };
                    }
                    TokenTree::Punct(p) if p.as_char() == ';' => {
                        return Item { name, generics, body: Body::Unit };
                    }
                    _ => i += 1,
                }
            }
            Item { name, generics, body: Body::Unit }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + bracket group
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

/// Parses `<A, B: Bound, 'a>` at `toks[*i]`, returning the type-parameter
/// names. Leaves `*i` just past the closing `>`.
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    match toks.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return params,
    }
    *i += 1;
    let mut depth = 1usize;
    let mut at_param_start = true;
    let mut in_lifetime = false;
    while *i < toks.len() && depth > 0 {
        match &toks[*i] {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 1 => {
                    at_param_start = true;
                    in_lifetime = false;
                }
                '\'' if depth == 1 => in_lifetime = true,
                ':' if depth == 1 => at_param_start = false,
                _ => {}
            },
            TokenTree::Ident(id) if depth == 1 && at_param_start => {
                if in_lifetime {
                    in_lifetime = false; // the lifetime's name, not a type param
                } else {
                    params.push(id.to_string());
                }
                at_param_start = false;
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Field names of `{ pub a: T, b: U }`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        fields.push(name);
        i += 1;
        // Skip `: Type` up to the next top-level comma. Groups are atomic
        // token trees, so only `<`/`>` pairs need depth tracking.
        let mut angle = 0isize;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                },
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Arity of a tuple-struct / tuple-variant body `(A, B<C, D>)`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0isize;
    let mut saw_any = false;
    for t in &toks {
        match t {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => count += 1,
                _ => saw_any = true,
            },
            _ => saw_any = true,
        }
    }
    // Tolerate a trailing comma: `(A, B,)`.
    if let Some(TokenTree::Punct(p)) = toks.last() {
        if p.as_char() == ',' && saw_any {
            count -= 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let mut shape = Shape::Unit;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    shape = Shape::Tuple(count_tuple_fields(g.stream()));
                    i += 1;
                }
                Delimiter::Brace => {
                    shape = Shape::Named(parse_named_fields(g.stream()));
                    i += 1;
                }
                _ => {}
            }
        }
        // Skip an explicit discriminant `= expr` through the next comma.
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text, then re-parsed)
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        (
            format!("<{}>", bounded.join(", ")),
            format!("<{}>", item.generics.join(", ")),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (ig, tg) = impl_header(item, "Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(k) => {
            let entries: Vec<String> = (0..*k)
                .map(|j| format!("::serde::Serialize::to_value(&self.{j})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))])"
                        ),
                        Shape::Tuple(k) => {
                            let pats: Vec<String> = (0..*k).map(|j| format!("__f{j}")).collect();
                            let vals: Vec<String> = (0..*k)
                                .map(|j| format!("::serde::Serialize::to_value(__f{j})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Array(vec![{}]))])",
                                pats.join(", "),
                                vals.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let pats = fields.join(", ");
                            let vals: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {pats} }} => ::serde::Value::Object(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Object(vec![{}]))])",
                                vals.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived] impl{ig} ::serde::Serialize for {name}{tg} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (ig, tg) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__private::field(__obj, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __obj = ::serde::__private::as_object(__v, \"{name}\")?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Tuple(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Body::Tuple(k) => {
            let inits: Vec<String> = (0..*k)
                .map(|j| format!("::serde::Deserialize::from_value(&__arr[{j}])?"))
                .collect();
            format!(
                "let __arr = ::serde::__private::as_array_of(__v, {k}, \"{name}\")?; \
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn})")
                        }
                        Shape::Tuple(1) => format!(
                            "\"{vn}\" => {{ let __p = ::serde::__private::payload(__payload, \"{name}::{vn}\")?; \
                             ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__p)?)) }}"
                        ),
                        Shape::Tuple(k) => {
                            let inits: Vec<String> = (0..*k)
                                .map(|j| format!("::serde::Deserialize::from_value(&__arr[{j}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __p = ::serde::__private::payload(__payload, \"{name}::{vn}\")?; \
                                 let __arr = ::serde::__private::as_array_of(__p, {k}, \"{name}::{vn}\")?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }}",
                                inits.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::__private::field(__obj, \"{f}\", \"{name}::{vn}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __p = ::serde::__private::payload(__payload, \"{name}::{vn}\")?; \
                                 let __obj = ::serde::__private::as_object(__p, \"{name}::{vn}\")?; \
                                 ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (__tag, __payload) = ::serde::__private::variant(__v, \"{name}\")?; \
                 match __tag {{ {}, __other => ::std::result::Result::Err(::serde::DeError::new(format!(\"unknown variant `{{__other}}` of {name}\"))) }}",
                arms.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived] impl{ig} ::serde::Deserialize for {name}{tg} {{ \
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} \
         }}"
    )
}
