//! Offline stand-in for the `serde_json` crate: JSON text printing and a
//! recursive-descent parser over the compat [`serde::Value`] tree.
//!
//! Supports the subset the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], and the [`Value`] re-export with
//! `Index<&str>` access.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// JSON error (serialization never fails; parse errors carry a byte offset).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json(false))
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json(true))
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> Error {
        Error::new(format!("{what} at byte {} of JSON input", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.pos += 1;
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("missing low surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("missing low surrogate"));
                                }
                                let lo = self.hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        // Called with pos at 'u'; reads the 4 hex digits after it, leaving
        // pos on the last digit (caller advances past it).
        let start = self.pos + 1;
        if start + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..start + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = start + 3;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for json in ["null", "true", "false", "0", "42", "-7", "1.5", "\"hi\""] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let json = r#"{"a":[1,2,{"b":null}],"c":"x\"y"}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn unicode_strings() {
        let v: Value = from_str("\"\\u03b1 and α\"").unwrap();
        assert_eq!(v.as_str(), Some("α and α"));
    }

    #[test]
    fn pretty_parses_back() {
        let v: Value = from_str(r#"{"k":[1,2],"m":{"x":true}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn typed_roundtrip() {
        let xs: Vec<Option<usize>> = vec![Some(3), None, Some(0)];
        let json = to_string(&xs).unwrap();
        assert_eq!(json, "[3,null,0]");
        let back: Vec<Option<usize>> = from_str(&json).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn error_reports_offset() {
        let err = from_str::<Value>("[1, 2").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }
}
