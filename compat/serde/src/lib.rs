//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no crates.io access, so the
//! real serde is replaced by this minimal value-tree implementation. The
//! shape of the public surface matches what the workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the local
//!   `serde_derive` proc-macro crate);
//! * the [`Serialize`] / [`Deserialize`] traits, here defined directly over
//!   an owned JSON [`Value`] tree instead of serde's visitor machinery;
//! * impls for the std types the workspace serializes (integers, floats,
//!   `bool`, `char`, strings, `Vec`, `Option`, `Box`, tuples, arrays).
//!
//! `compat/serde_json` layers the JSON text format on top of this crate.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-style value tree — the common currency of the compat
/// serialization stack.
///
/// Integers are canonicalized at construction: everything non-negative is a
/// `UInt`, negatives are `Int`, so equality is consistent across the
/// serialize → print → parse roundtrip.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, with insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up an object key or array index, `None` if absent or the
    /// wrong shape (mirrors `serde_json::Value::get`).
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.get_from(self)
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Canonicalizes a signed integer into the `Int`/`UInt` split.
    pub fn from_i64(i: i64) -> Value {
        if i >= 0 {
            Value::UInt(i as u64)
        } else {
            Value::Int(i)
        }
    }

    /// Renders the value as JSON text.
    pub fn to_json(&self, pretty: bool) -> String {
        let mut out = String::new();
        self.write_json(&mut out, pretty, 0);
        out
    }

    fn write_json(&self, out: &mut String, pretty: bool, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null"); // JSON has no NaN/inf
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    item.write_json(out, pretty, indent + 1);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (k, (key, val)) in entries.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    if pretty {
                        out.push('\n');
                        push_indent(out, indent + 1);
                    }
                    write_json_string(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    val.write_json(out, pretty, indent + 1);
                }
                if pretty {
                    out.push('\n');
                    push_indent(out, indent);
                }
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact JSON rendering (mirrors `serde_json::Value`'s `Display`).
impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json(false))
    }
}

/// Index types accepted by [`Value::get`]: `&str` for objects, `usize`
/// for arrays.
pub trait ValueIndex {
    /// The value at this index, if present.
    fn get_from(self, v: &Value) -> Option<&Value>;
}

impl ValueIndex for &str {
    fn get_from(self, v: &Value) -> Option<&Value> {
        match v {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == self).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl ValueIndex for usize {
    fn get_from(self, v: &Value) -> Option<&Value> {
        match v {
            Value::Array(items) => items.get(self),
            _ => None,
        }
    }
}

/// Object field access by key, `serde_json`-style: missing keys and
/// non-objects yield `Null` rather than panicking.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Array element access by index; out-of-range and non-arrays yield `Null`.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error: a message naming the expected and found shapes.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- std impls -------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| {
                    DeError::new(format!("expected unsigned integer, found {v}"))
                })?;
                <$t>::try_from(u).map_err(|_| DeError::new(format!("{u} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::from_i64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| {
                    DeError::new(format!("expected integer, found {v}"))
                })?;
                <$t>::try_from(i).map_err(|_| DeError::new(format!("{i} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::new(format!("expected number, found {v}")))
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::new(format!("expected bool, found {v}")))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::new(format!("expected single-char string, found {v}")))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!("expected single-char string, found {v}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new(format!("expected string, found {v}")))
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new(format!("expected array, found {v}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic JSON output across runs.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new(format!("expected object, found {v}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}
impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new(format!("expected object, found {v}")))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array()
                    .ok_or_else(|| DeError::new(format!("expected tuple array, found {v}")))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(DeError::new(format!(
                        "expected {expected}-tuple, found array of {}", arr.len()
                    )));
                }
                Ok(($($name::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Support routines referenced by `serde_derive`-generated code. Not part of
/// the public contract of this stand-in.
#[doc(hidden)]
pub mod __private {
    use super::{DeError, Value};

    pub fn as_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
        v.as_object()
            .ok_or_else(|| DeError::new(format!("{ty}: expected object, found {v}")))
    }

    pub fn as_array_of<'a>(v: &'a Value, len: usize, ty: &str) -> Result<&'a [Value], DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::new(format!("{ty}: expected array, found {v}")))?;
        if arr.len() != len {
            return Err(DeError::new(format!(
                "{ty}: expected {len} elements, found {}",
                arr.len()
            )));
        }
        Ok(arr)
    }

    pub fn field<'a>(
        obj: &'a [(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<&'a Value, DeError> {
        obj.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::new(format!("{ty}: missing field `{name}`")))
    }

    pub fn variant<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, Option<&'a Value>), DeError> {
        match v {
            Value::Str(s) => Ok((s, None)),
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(DeError::new(format!(
                "{ty}: expected variant string or single-key object, found {other}"
            ))),
        }
    }

    pub fn payload<'a>(p: Option<&'a Value>, ty: &str) -> Result<&'a Value, DeError> {
        p.ok_or_else(|| DeError::new(format!("{ty}: missing variant payload")))
    }
}
