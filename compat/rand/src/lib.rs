//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Provides the subset this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! `gen_range` / `gen_bool` / `gen`, and [`seq::SliceRandom`] shuffling.
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for test workload generation, deterministic for a given seed, but
//! **not** the ChaCha12 stream of the real `StdRng` (seeded sequences differ
//! from upstream `rand`).

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Ranges that can produce a uniform sample (`0..n`, `1..=k`, …).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` via 128-bit widening multiply.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    assert!(span > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}
impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}
impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000usize), b.gen_range(0..1_000_000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0..100usize) == c.gen_range(0..100usize));
        assert!(!same);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5..=9u32);
            assert!((5..=9).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<usize> = (0..64).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(xs, (0..64).collect::<Vec<_>>());
    }
}
