//! # brsmn — A New Self-Routing Multicast Network
//!
//! Umbrella crate re-exporting the whole workspace: a full reproduction of
//! Yang & Wang, *"A New Self-Routing Multicast Network"* (IPPS/SPDP 1998;
//! IEEE TPDS 10(11), 1999).
//!
//! The headline artifact is the **binary radix sorting multicast network
//! (BRSMN)**: an `n × n` switching fabric that realizes *every* multicast
//! assignment over edge-disjoint trees, self-routed by distributed circuits,
//! with `O(n log² n)` gate cost, `O(log² n)` depth and `O(log² n)` routing
//! time — and an `O(n log n)`-cost feedback variant reusing a single reverse
//! banyan network.
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`topology`] | `brsmn-topology` | shuffle/exchange functions, merging-stage geometry, banyan property |
//! | [`switch`] | `brsmn-switch` | four-value routing tags, 2×2 switch operations, Table 1 encoding |
//! | [`rbn`] | `brsmn-rbn` | circular compact sequences, Lemmas 1–5, bit-sorting / scatter / quasisorting RBNs, distributed algorithms |
//! | [`core`] | `brsmn-core` | tag trees and `SEQ` wire format, BSN, recursive BRSMN, feedback implementation, exact cost metrics |
//! | [`baselines`] | `brsmn-baselines` | crossbar, Beneš + looping, copy network, Nassimi–Sahni / Lee–Oruç analytic models |
//! | [`sim`] | `brsmn-sim` | gate-delay timing: pipelined bit-serial adders, routing-time measurement |
//! | [`workloads`] | `brsmn-workloads` | multicast assignment generators, queueing/admission models |
//! | [`serve`] | `brsmn-serve` | sharded serving loop: bounded queue, admission control, latency histograms, graceful drain |
//! | [`cluster`] | `brsmn-cluster` | simulated distributed control plane: virtual-time network, Paxos-style membership, invalidation broadcast, anti-entropy |
//!
//! ## Quickstart
//!
//! ```
//! use brsmn::core::{Brsmn, MulticastAssignment};
//!
//! // The 8×8 example assignment from Section 2 of the paper.
//! let asg = MulticastAssignment::from_sets(8, vec![
//!     vec![0, 1], vec![], vec![3, 4, 7], vec![2], vec![], vec![], vec![], vec![5, 6],
//! ]).unwrap();
//!
//! let net = Brsmn::new(8).unwrap();
//! let result = net.route(&asg).unwrap();
//! assert_eq!(result.output_source(3), Some(2)); // output 3 hears input 2
//! assert!(result.realizes(&asg));
//! ```

pub use brsmn_baselines as baselines;
pub use brsmn_cluster as cluster;
pub use brsmn_core as core;
pub use brsmn_rbn as rbn;
pub use brsmn_serve as serve;
pub use brsmn_sim as sim;
pub use brsmn_switch as switch;
pub use brsmn_topology as topology;
pub use brsmn_workloads as workloads;
